#include "verify/symexec.h"

#include "isa/branch.h"
#include "isa/instruction.h"
#include "isa/registers.h"
#include "isa/special.h"
#include "isa/symbolic.h"
#include "support/strings.h"

namespace mips::verify {

// ===================== ExprArena =====================

size_t
ExprArena::NodeHash::operator()(const ExprNode &n) const
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(n.op));
    mix(n.aux);
    mix(n.a);
    mix(n.b);
    mix(n.c);
    mix(n.value);
    return static_cast<size_t>(h);
}

ExprArena::ExprArena(const reorg::AliasOptions &alias, size_t max_nodes)
    : alias_(alias), max_nodes_(max_nodes)
{
    konst(0); // node 0: the overflow fallback is always valid
}

ExprRef
ExprArena::intern(ExprNode n)
{
    auto it = interned_.find(n);
    if (it != interned_.end())
        return it->second;
    if (nodes_.size() >= max_nodes_) {
        overflowed_ = true;
        return 0;
    }
    ExprRef r = static_cast<ExprRef>(nodes_.size());
    nodes_.push_back(n);
    interned_.emplace(n, r);
    return r;
}

ExprRef
ExprArena::konst(uint32_t v)
{
    ExprNode n;
    n.op = ExprOp::CONST;
    n.value = v;
    return intern(n);
}

ExprRef
ExprArena::input(uint32_t id)
{
    ExprNode n;
    n.op = ExprOp::INPUT;
    n.value = id;
    return intern(n);
}

ExprRef
ExprArena::labelAddr(const std::string &label)
{
    auto [it, fresh] = label_ids_.emplace(
        label, static_cast<uint32_t>(label_ids_.size()));
    (void)fresh;
    ExprNode n;
    n.op = ExprOp::LABEL_ADDR;
    n.value = it->second;
    return intern(n);
}

namespace {

/** Binary node shorthand. */
ExprNode
binary(ExprOp op, ExprRef a, ExprRef b)
{
    ExprNode n;
    n.op = op;
    n.a = a;
    n.b = b;
    return n;
}

} // namespace

ExprRef
ExprArena::add(ExprRef a, ExprRef b)
{
    if (node(a).op == ExprOp::CONST && node(b).op == ExprOp::CONST)
        return konst(node(a).value + node(b).value);
    if (node(a).op == ExprOp::CONST)
        std::swap(a, b);
    if (node(b).op == ExprOp::CONST) {
        uint32_t vb = node(b).value;
        if (vb == 0)
            return a;
        // Reassociate constant chains: (x + c1) + c2 -> x + (c1+c2).
        if (node(a).op == ExprOp::ADD &&
            node(node(a).b).op == ExprOp::CONST) {
            ExprRef x = node(a).a;
            uint32_t c1 = node(node(a).b).value;
            return add(x, konst(c1 + vb));
        }
    } else if (a > b) {
        std::swap(a, b);
    }
    return intern(binary(ExprOp::ADD, a, b));
}

ExprRef
ExprArena::sub(ExprRef a, ExprRef b)
{
    if (node(a).op == ExprOp::CONST && node(b).op == ExprOp::CONST)
        return konst(node(a).value - node(b).value);
    if (node(b).op == ExprOp::CONST)
        return add(a, konst(0u - node(b).value));
    if (a == b)
        return konst(0);
    return intern(binary(ExprOp::SUB, a, b));
}

ExprRef
ExprArena::and_(ExprRef a, ExprRef b)
{
    if (node(a).op == ExprOp::CONST && node(b).op == ExprOp::CONST)
        return konst(node(a).value & node(b).value);
    if (node(a).op == ExprOp::CONST)
        std::swap(a, b);
    if (node(b).op == ExprOp::CONST) {
        uint32_t vb = node(b).value;
        if (vb == 0)
            return konst(0);
        if (vb == 0xffffffffu)
            return a;
    } else if (a == b) {
        return a;
    } else if (a > b) {
        std::swap(a, b);
    }
    return intern(binary(ExprOp::AND, a, b));
}

ExprRef
ExprArena::or_(ExprRef a, ExprRef b)
{
    if (node(a).op == ExprOp::CONST && node(b).op == ExprOp::CONST)
        return konst(node(a).value | node(b).value);
    if (node(a).op == ExprOp::CONST)
        std::swap(a, b);
    if (node(b).op == ExprOp::CONST) {
        uint32_t vb = node(b).value;
        if (vb == 0)
            return a;
        if (vb == 0xffffffffu)
            return konst(0xffffffffu);
    } else if (a == b) {
        return a;
    } else if (a > b) {
        std::swap(a, b);
    }
    return intern(binary(ExprOp::OR, a, b));
}

ExprRef
ExprArena::xor_(ExprRef a, ExprRef b)
{
    if (node(a).op == ExprOp::CONST && node(b).op == ExprOp::CONST)
        return konst(node(a).value ^ node(b).value);
    if (node(a).op == ExprOp::CONST)
        std::swap(a, b);
    if (node(b).op == ExprOp::CONST) {
        if (node(b).value == 0)
            return a;
    } else if (a == b) {
        return konst(0);
    } else if (a > b) {
        std::swap(a, b);
    }
    return intern(binary(ExprOp::XOR, a, b));
}

ExprRef
ExprArena::not_(ExprRef a)
{
    if (node(a).op == ExprOp::CONST)
        return konst(~node(a).value);
    if (node(a).op == ExprOp::NOT)
        return node(a).a;
    ExprNode n;
    n.op = ExprOp::NOT;
    n.a = a;
    return intern(n);
}

ExprRef
ExprArena::shl(ExprRef a, ExprRef amt)
{
    if (node(amt).op == ExprOp::CONST) {
        uint32_t s = node(amt).value & 31;
        if (s == 0)
            return a;
        if (node(a).op == ExprOp::CONST)
            return konst(node(a).value << s);
    }
    return intern(binary(ExprOp::SHL, a, amt));
}

ExprRef
ExprArena::shrl(ExprRef a, ExprRef amt)
{
    if (node(amt).op == ExprOp::CONST) {
        uint32_t s = node(amt).value & 31;
        if (s == 0)
            return a;
        if (node(a).op == ExprOp::CONST)
            return konst(node(a).value >> s);
    }
    return intern(binary(ExprOp::SHRL, a, amt));
}

ExprRef
ExprArena::shra(ExprRef a, ExprRef amt)
{
    if (node(amt).op == ExprOp::CONST) {
        uint32_t s = node(amt).value & 31;
        if (s == 0)
            return a;
        if (node(a).op == ExprOp::CONST)
            return konst(static_cast<uint32_t>(
                static_cast<int32_t>(node(a).value) >> s));
    }
    return intern(binary(ExprOp::SHRA, a, amt));
}

ExprRef
ExprArena::extractByte(ExprRef sel, ExprRef w)
{
    if (node(sel).op == ExprOp::CONST && node(w).op == ExprOp::CONST) {
        return konst((node(w).value >> (8 * (node(sel).value & 3))) &
                     0xff);
    }
    return intern(binary(ExprOp::XBYTE, sel, w));
}

ExprRef
ExprArena::insertByte(ExprRef old, ExprRef src, ExprRef sel)
{
    if (node(old).op == ExprOp::CONST &&
        node(src).op == ExprOp::CONST &&
        node(sel).op == ExprOp::CONST) {
        int shift = 8 * (node(sel).value & 3);
        uint32_t byte_mask = 0xffu << shift;
        return konst((node(old).value & ~byte_mask) |
                     ((node(src).value & 0xff) << shift));
    }
    ExprNode n;
    n.op = ExprOp::IBYTE;
    n.a = old;
    n.b = src;
    n.c = sel;
    return intern(n);
}

ExprRef
ExprArena::cmp(isa::Cond c, ExprRef a, ExprRef b)
{
    using isa::Cond;
    if (c == Cond::ALWAYS)
        return konst(1);
    if (c == Cond::NEVER)
        return konst(0);
    bool unary = c == Cond::MI || c == Cond::PL || c == Cond::EVN ||
                 c == Cond::ODD;
    if (node(a).op == ExprOp::CONST &&
        (unary || node(b).op == ExprOp::CONST)) {
        uint32_t vb = unary ? 0 : node(b).value;
        return konst(isa::evalCond(c, node(a).value, vb) ? 1 : 0);
    }
    if (a == b && !unary) {
        switch (c) {
          case Cond::EQ: case Cond::LE: case Cond::GE:
          case Cond::LEU: case Cond::GEU:
            return konst(1);
          case Cond::NE: case Cond::LT: case Cond::GT:
          case Cond::LTU: case Cond::GTU:
            return konst(0);
          default:
            break;
        }
    }
    ExprNode n = binary(ExprOp::CMP, a, b);
    n.aux = static_cast<uint8_t>(c);
    return intern(n);
}

ExprRef
ExprArena::select(ExprRef c, ExprRef t, ExprRef f)
{
    if (node(c).op == ExprOp::CONST)
        return node(c).value != 0 ? t : f;
    if (t == f)
        return t;
    ExprNode n;
    n.op = ExprOp::SELECT;
    n.a = c;
    n.b = t;
    n.c = f;
    return intern(n);
}

ExprRef
ExprArena::memInit()
{
    ExprNode n;
    n.op = ExprOp::MEM_INIT;
    return intern(n);
}

std::pair<ExprRef, uint32_t>
ExprArena::decompose(ExprRef addr) const
{
    const ExprNode &n = node(addr);
    if (n.op == ExprOp::CONST)
        return {kNoExpr, n.value};
    if (n.op == ExprOp::ADD && node(n.b).op == ExprOp::CONST)
        return {n.a, node(n.b).value};
    return {addr, 0};
}

bool
ExprArena::definitelyDisjoint(ExprRef p, ExprRef q) const
{
    auto [pb, po] = decompose(p);
    auto [qb, qo] = decompose(q);
    if (pb != qb || po == qo)
        return false;
    if (pb == kNoExpr) {
        // Two distinct absolute constants: disjoint unless either is
        // in the volatile (device-register) window — mirroring
        // reorg::Dag::mayAlias.
        return po < alias_.volatile_base && qo < alias_.volatile_base;
    }
    // Same base term, distinct constant displacements. The base is a
    // *value* term, so "never redefined" holds by construction.
    return true;
}

ExprRef
ExprArena::memStore(ExprRef mem, ExprRef addr, ExprRef val)
{
    // Keep chains of provably disjoint stores insertion-sorted by
    // address term so legally reordered independent stores normalize
    // to one canonical chain.
    const ExprNode prev = node(mem); // copy: intern() may reallocate
    if (prev.op == ExprOp::MEM_STORE && addr < prev.b &&
        definitelyDisjoint(addr, prev.b)) {
        ExprRef inner = memStore(prev.a, addr, val);
        ExprNode n;
        n.op = ExprOp::MEM_STORE;
        n.a = inner;
        n.b = prev.b;
        n.c = prev.c;
        return intern(n);
    }
    ExprNode n;
    n.op = ExprOp::MEM_STORE;
    n.a = mem;
    n.b = addr;
    n.c = val;
    return intern(n);
}

ExprRef
ExprArena::memLoad(ExprRef mem, ExprRef addr)
{
    // Forward from a matching store; skip provably disjoint ones;
    // stop (opaque load) at the first possible alias.
    ExprRef walk = mem;
    for (;;) {
        const ExprNode n = node(walk); // copy: intern() may reallocate
        if (n.op != ExprOp::MEM_STORE)
            break;
        if (n.b == addr)
            return n.c;
        if (!definitelyDisjoint(addr, n.b))
            break;
        walk = n.a;
    }
    return intern(binary(ExprOp::MEM_LOAD, walk, addr));
}

ExprRef
ExprArena::sysInit()
{
    ExprNode n;
    n.op = ExprOp::SYS_INIT;
    return intern(n);
}

ExprRef
ExprArena::sysEffect(ExprRef sys, uint8_t sreg, ExprRef val)
{
    ExprNode n = binary(ExprOp::SYS_EFFECT, sys, val);
    n.aux = sreg;
    return intern(n);
}

ExprRef
ExprArena::sysRead(ExprRef sys, uint8_t sreg)
{
    ExprNode n;
    n.op = ExprOp::SYS_READ;
    n.a = sys;
    n.aux = sreg;
    return intern(n);
}

std::string
ExprArena::str(ExprRef r, int max_depth) const
{
    const ExprNode &n = node(r);
    if (max_depth <= 0)
        return "...";
    auto rec = [this, max_depth](ExprRef x) {
        return str(x, max_depth - 1);
    };
    // Concatenation goes through append() rather than operator+ on
    // string temporaries: GCC 12's -Wrestrict misfires on the inlined
    // `const char * + std::string&&` overload at -O3 (PR 105651), and
    // this TU builds with -Werror.
    auto cat = [](std::initializer_list<std::string> parts) {
        std::string out;
        for (const std::string &part : parts)
            out += part;
        return out;
    };
    switch (n.op) {
      case ExprOp::CONST:
        return n.value < 1024
                   ? support::strprintf("%u", n.value)
                   : support::strprintf("0x%x", n.value);
      case ExprOp::INPUT:
        if (n.value >= 1 && n.value <= 15)
            return support::strprintf("r%u@entry", n.value);
        if (n.value == kInputLo)
            return "lo@entry";
        if (n.value == kInputCallLink)
            return "retaddr";
        return support::strprintf("in%u", n.value);
      case ExprOp::LABEL_ADDR:
        for (const auto &[name, id] : label_ids_) {
            if (id == n.value)
                return cat({"&", name});
        }
        return "&?";
      case ExprOp::ADD: return cat({"(", rec(n.a), " + ", rec(n.b), ")"});
      case ExprOp::SUB: return cat({"(", rec(n.a), " - ", rec(n.b), ")"});
      case ExprOp::AND: return cat({"(", rec(n.a), " & ", rec(n.b), ")"});
      case ExprOp::OR:  return cat({"(", rec(n.a), " | ", rec(n.b), ")"});
      case ExprOp::XOR: return cat({"(", rec(n.a), " ^ ", rec(n.b), ")"});
      case ExprOp::NOT: return cat({"~", rec(n.a)});
      case ExprOp::SHL: return cat({"(", rec(n.a), " << ", rec(n.b), ")"});
      case ExprOp::SHRL:
        return cat({"(", rec(n.a), " >> ", rec(n.b), ")"});
      case ExprOp::SHRA:
        return cat({"(", rec(n.a), " >>a ", rec(n.b), ")"});
      case ExprOp::XBYTE:
        return cat({"xc(", rec(n.a), ", ", rec(n.b), ")"});
      case ExprOp::IBYTE:
        return cat({"ic(", rec(n.a), ", ", rec(n.b), ", ", rec(n.c),
                    ")"});
      case ExprOp::CMP:
        return cat({isa::condName(static_cast<isa::Cond>(n.aux)), "(",
                    rec(n.a), ", ", rec(n.b), ")"});
      case ExprOp::SELECT:
        return cat({"sel(", rec(n.a), ", ", rec(n.b), ", ", rec(n.c),
                    ")"});
      case ExprOp::MEM_INIT: return "mem0";
      case ExprOp::MEM_STORE:
        return cat({"st(", rec(n.a), ", [", rec(n.b), "]=", rec(n.c),
                    ")"});
      case ExprOp::MEM_LOAD:
        return cat({"ld(", rec(n.a), ", [", rec(n.b), "])"});
      case ExprOp::SYS_INIT: return "sys0";
      case ExprOp::SYS_EFFECT:
        return cat({support::strprintf("mts%u(", n.aux), rec(n.a), ", ",
                    rec(n.b), ")"});
      case ExprOp::SYS_READ:
        return cat({support::strprintf("mfs%u(", n.aux), rec(n.a), ")"});
    }
    return "?";
}

// ===================== interpreters =====================

SymState
entryState(ExprArena &arena)
{
    SymState s;
    s.regs[0] = arena.konst(0);
    for (int r = 1; r < isa::kNumRegs; ++r)
        s.regs[r] = arena.input(static_cast<uint32_t>(r));
    s.lo = arena.input(kInputLo);
    s.mem = arena.memInit();
    s.sys = arena.sysInit();
    return s;
}

RegionMap
buildRegionMap(const assembler::Unit &unit,
               const std::map<std::string, size_t> *known)
{
    RegionMap m;
    size_t n = unit.items.size();
    m.stop.assign(n, 0);
    m.stop_label.resize(n);
    m.fence.assign(n, -1);
    int ordinal = -1;
    bool in_run = false;
    for (size_t i = 0; i < n; ++i) {
        const assembler::Item &it = unit.items[i];
        bool fenced = it.no_reorder || it.is_data;
        if (fenced) {
            if (!in_run)
                ++ordinal;
            m.fence[i] = ordinal;
        }
        in_run = fenced;
        for (const std::string &label : it.labels) {
            if (!known || known->count(label)) {
                m.stop[i] = 1;
                m.stop_label[i] = label;
                break;
            }
        }
    }
    return m;
}

namespace {

using assembler::Item;
using assembler::Unit;
using isa::Instruction;

/** One interpreter instance executes one region run. */
class Interp
{
  public:
    Interp(ExprArena &arena, const Unit &unit, const RegionMap &map,
           const SymLimits &limits, bool pipeline)
        : arena_(arena), unit_(unit), map_(map), limits_(limits),
          pipeline_(pipeline)
    {}

    SymRun run(size_t start, const SymState &entry);

  private:
    enum class Step { CONTINUE, FINAL, FAIL };

    Step stepSequential(size_t idx);
    Step stepPipeline(size_t idx);

    ExprRef getReg(isa::Reg r) const { return st_.regs[r]; }

    void
    setReg(isa::Reg r, ExprRef v)
    {
        if (r != isa::kZeroReg)
            st_.regs[r] = v;
    }

    /** Pending load committed into a *copy* of the state: side exits
     *  must not perturb the continuing fall-through path. */
    SymState
    captureState() const
    {
        SymState s = st_;
        if (load_pending_ && load_reg_ != isa::kZeroReg)
            s.regs[load_reg_] = load_val_;
        return s;
    }

    Step
    fail(size_t at, std::string why)
    {
        run_.ok = false;
        run_.why = std::move(why);
        run_.fail_at = at;
        return Step::FAIL;
    }

    void
    pushFinal(SymExit e)
    {
        e.state = captureState();
        run_.exits.push_back(std::move(e));
    }

    /** Branch target: symbolic label or computed numeric address. */
    static void
    fillBranchTarget(SymExit *e, const Unit &unit, size_t idx,
                     const isa::BranchPiece &b, const Item &it)
    {
        if (!it.target.empty()) {
            e->label = it.target;
        } else {
            e->has_addr = true;
            e->addr = unit.origin + static_cast<uint32_t>(idx) + 1 +
                      static_cast<uint32_t>(b.offset);
        }
    }

    /** Effective address term; false for unsupported label uses. */
    bool
    effAddr(const Item &it, const isa::MemPiece &m, ExprRef base,
            ExprRef index, ExprRef *out)
    {
        if (!it.target.empty()) {
            if (m.mode != isa::MemMode::ABSOLUTE)
                return false;
            *out = arena_.labelAddr(it.target);
            return true;
        }
        *out = isa::memEffectiveAddressSymbolic(m, arena_, base, index);
        return true;
    }

    ExprRef
    longImmValue(const Item &it, const isa::MemPiece &m)
    {
        if (!it.target.empty())
            return arena_.labelAddr(it.target);
        return arena_.konst(static_cast<uint32_t>(m.imm));
    }

    ExprArena &arena_;
    const Unit &unit_;
    const RegionMap &map_;
    const SymLimits &limits_;
    const bool pipeline_;

    SymState st_;
    SymRun run_;

    // Pipeline-only: the one-deep load delay and the pending taken
    // transfer whose delay shadow is still executing.
    bool load_pending_ = false;
    isa::Reg load_reg_ = isa::kZeroReg;
    ExprRef load_val_ = kNoExpr;
    bool exit_pending_ = false;
    SymExit pexit_;
    int pslots_ = 0;
};

SymRun
Interp::run(size_t start, const SymState &entry)
{
    st_ = entry;
    size_t idx = start;
    size_t steps = 0;
    for (;;) {
        if (arena_.overflowed()) {
            fail(idx, "expression budget exhausted");
            return run_;
        }
        // Region boundaries are checked before executing the item.
        if (idx >= unit_.items.size()) {
            if (exit_pending_) {
                fail(idx, "delay shadow runs off the end of the unit");
                return run_;
            }
            SymExit e;
            e.kind = SymExitKind::FALL_END;
            e.at = idx;
            pushFinal(std::move(e));
            run_.ok = true;
            return run_;
        }
        if (map_.fence[idx] >= 0) {
            if (exit_pending_) {
                fail(idx, "delay shadow enters a fenced region");
                return run_;
            }
            SymExit e;
            e.kind = SymExitKind::FALL_FENCE;
            e.ordinal = static_cast<size_t>(map_.fence[idx]);
            e.at = idx;
            pushFinal(std::move(e));
            run_.ok = true;
            return run_;
        }
        if (idx != start && map_.stop[idx]) {
            if (exit_pending_) {
                fail(idx, "delay shadow crosses a label");
                return run_;
            }
            SymExit e;
            e.kind = SymExitKind::FALL_LABEL;
            e.label = map_.stop_label[idx];
            e.at = idx;
            pushFinal(std::move(e));
            run_.ok = true;
            return run_;
        }
        if (++steps > limits_.max_steps) {
            fail(idx, "step budget exhausted");
            return run_;
        }

        Step r = pipeline_ ? stepPipeline(idx) : stepSequential(idx);
        if (r == Step::FAIL)
            return run_;
        if (r == Step::FINAL) {
            run_.ok = true;
            return run_;
        }
        size_t executed = idx;
        ++idx;
        // Count down the delay shadow of a pending taken transfer;
        // the transfer word itself is not one of its own slots.
        if (exit_pending_ && executed != pexit_.at) {
            if (--pslots_ == 0) {
                SymExit e = pexit_;
                exit_pending_ = false;
                e.state = captureState();
                bool is_final = e.kind != SymExitKind::BRANCH;
                run_.exits.push_back(std::move(e));
                if (is_final) {
                    run_.ok = true;
                    return run_;
                }
            }
        }
    }
}

Interp::Step
Interp::stepSequential(size_t idx)
{
    const Item &it = unit_.items[idx];
    if (it.is_data)
        return fail(idx, "data word outside a fenced run");
    const Instruction &inst = it.inst;

    // Mirrors sim/functional.cc: pieces execute strictly in order,
    // each seeing the previous piece's writes.
    if (inst.alu) {
        const isa::AluPiece &p = *inst.alu;
        ExprRef rs = getReg(p.rs);
        ExprRef s2 = p.src2.is_imm ? arena_.konst(p.src2.imm4)
                                   : getReg(p.src2.reg);
        auto out = isa::evalAluSymbolic(p, arena_, rs, s2,
                                        getReg(p.rd), st_.lo);
        if (out.writes_rd)
            setReg(p.rd, out.rd);
        if (out.writes_lo)
            st_.lo = out.lo;
    }

    if (inst.mem) {
        const isa::MemPiece &m = *inst.mem;
        if (m.mode == isa::MemMode::LONG_IMM) {
            setReg(m.rd, longImmValue(it, m));
        } else {
            ExprRef ea = kNoExpr;
            if (!effAddr(it, m, getReg(m.base), getReg(m.index), &ea))
                return fail(idx, "label-relative addressing mode");
            if (m.is_store)
                st_.mem = arena_.memStore(st_.mem, ea, getReg(m.rd));
            else
                setReg(m.rd, arena_.memLoad(st_.mem, ea));
        }
    }

    if (inst.branch) {
        const isa::BranchPiece &b = *inst.branch;
        if (b.cond != isa::Cond::NEVER) {
            SymExit e;
            e.at = idx;
            fillBranchTarget(&e, unit_, idx, b, it);
            if (b.cond == isa::Cond::ALWAYS) {
                e.kind = SymExitKind::GOTO;
                pushFinal(std::move(e));
                return Step::FINAL;
            }
            e.kind = SymExitKind::BRANCH;
            ExprRef s2 = b.src2.is_imm ? arena_.konst(b.src2.imm4)
                                       : getReg(b.src2.reg);
            e.cond = arena_.cmp(b.cond, getReg(b.rs), s2);
            e.state = captureState();
            run_.exits.push_back(std::move(e));
        }
    } else if (inst.jump) {
        const isa::JumpPiece &j = *inst.jump;
        SymExit e;
        e.at = idx;
        if (isa::jumpIsTable(j.kind)) {
            // The dispatched target is the fetched table entry; the
            // table label (metadata) rides along for the validator's
            // entry-sequence comparison.
            e.kind = SymExitKind::JUMP_TABLE;
            e.target = arena_.memLoad(
                st_.mem,
                arena_.add(getReg(j.target_reg), getReg(j.index)));
            e.label = it.target;
            pushFinal(std::move(e));
            return Step::FINAL;
        }
        if (isa::jumpIsIndirect(j.kind))
            e.target = getReg(j.target_reg);
        else if (!it.target.empty())
            e.label = it.target;
        else {
            e.has_addr = true;
            e.addr = j.target_addr;
        }
        if (isa::jumpIsCall(j.kind)) {
            // Both machines compute different (correct) return
            // addresses; the validator compares them as one shared
            // opaque token.
            setReg(j.link, arena_.input(kInputCallLink));
            e.kind = SymExitKind::CALL;
        } else {
            e.kind = isa::jumpIsIndirect(j.kind)
                         ? SymExitKind::JUMP_INDIRECT
                         : SymExitKind::GOTO;
        }
        pushFinal(std::move(e));
        return Step::FINAL;
    } else if (inst.special) {
        const isa::SpecialPiece &sp = *inst.special;
        switch (sp.op) {
          case isa::SpecialOp::NOP:
            break;
          case isa::SpecialOp::HALT: {
            SymExit e;
            e.kind = SymExitKind::HALT;
            e.at = idx;
            pushFinal(std::move(e));
            return Step::FINAL;
          }
          case isa::SpecialOp::TRAP: {
            SymExit e;
            e.kind = SymExitKind::TRAP;
            e.trap_code = sp.trap_code;
            e.at = idx;
            pushFinal(std::move(e));
            return Step::FINAL;
          }
          case isa::SpecialOp::RFE: {
            SymExit e;
            e.kind = SymExitKind::RFE;
            e.at = idx;
            pushFinal(std::move(e));
            return Step::FINAL;
          }
          case isa::SpecialOp::MFS:
            if (sp.sreg == isa::SpecialReg::LO)
                setReg(sp.reg, st_.lo);
            else
                setReg(sp.reg,
                       arena_.sysRead(st_.sys,
                                      static_cast<uint8_t>(sp.sreg)));
            break;
          case isa::SpecialOp::MTS:
            if (sp.sreg == isa::SpecialReg::LO)
                st_.lo = getReg(sp.reg);
            else
                st_.sys = arena_.sysEffect(
                    st_.sys, static_cast<uint8_t>(sp.sreg),
                    getReg(sp.reg));
            break;
        }
    }
    return Step::CONTINUE;
}

Interp::Step
Interp::stepPipeline(size_t idx)
{
    const Item &it = unit_.items[idx];
    if (it.is_data)
        return fail(idx, "data word outside a fenced run");
    const Instruction &inst = it.inst;

    // Mirrors sim/cpu.cc stepInner(): ALL operand reads happen before
    // the pending load commits, so the word in a load's delay slot
    // sees the stale register value.
    ExprRef alu_rs = kNoExpr, alu_s2 = kNoExpr, alu_rdold = kNoExpr;
    ExprRef alu_lo = kNoExpr;
    if (inst.alu) {
        const isa::AluPiece &p = *inst.alu;
        alu_rs = getReg(p.rs);
        alu_s2 = p.src2.is_imm ? arena_.konst(p.src2.imm4)
                               : getReg(p.src2.reg);
        alu_rdold = getReg(p.rd);
        alu_lo = st_.lo;
    }
    ExprRef mem_base = kNoExpr, mem_index = kNoExpr, mem_data = kNoExpr;
    if (inst.mem) {
        mem_base = getReg(inst.mem->base);
        mem_index = getReg(inst.mem->index);
        mem_data = getReg(inst.mem->rd);
    }
    ExprRef br_rs = kNoExpr, br_s2 = kNoExpr;
    if (inst.branch) {
        br_rs = getReg(inst.branch->rs);
        br_s2 = inst.branch->src2.is_imm
                    ? arena_.konst(inst.branch->src2.imm4)
                    : getReg(inst.branch->src2.reg);
    }
    ExprRef jump_tv = kNoExpr, jump_iv = kNoExpr;
    if (inst.jump) {
        jump_tv = getReg(inst.jump->target_reg);
        jump_iv = getReg(inst.jump->index);
    }
    ExprRef special_val = kNoExpr;
    if (inst.special)
        special_val = getReg(inst.special->reg);

    // The previous word's load lands now, after this word's reads and
    // before its writes (a same-register write below wins).
    if (load_pending_) {
        setReg(load_reg_, load_val_);
        load_pending_ = false;
    }

    isa::SymAluOutputs<ExprArena> alu_out;
    if (inst.alu)
        alu_out = isa::evalAluSymbolic(*inst.alu, arena_, alu_rs,
                                       alu_s2, alu_rdold, alu_lo);

    // Memory commits before the same word's register writes.
    bool load_issued = false;
    isa::Reg load_rd = isa::kZeroReg;
    ExprRef load_v = kNoExpr;
    if (inst.mem) {
        const isa::MemPiece &m = *inst.mem;
        if (m.mode == isa::MemMode::LONG_IMM) {
            setReg(m.rd, longImmValue(it, m));
        } else {
            ExprRef ea = kNoExpr;
            if (!effAddr(it, m, mem_base, mem_index, &ea))
                return fail(idx, "label-relative addressing mode");
            if (m.is_store) {
                st_.mem = arena_.memStore(st_.mem, ea, mem_data);
            } else {
                // The value is read from memory now; only the
                // register write is delayed by one word.
                load_issued = true;
                load_rd = m.rd;
                load_v = arena_.memLoad(st_.mem, ea);
            }
        }
    }

    if (inst.alu) {
        if (alu_out.writes_rd)
            setReg(inst.alu->rd, alu_out.rd);
        if (alu_out.writes_lo)
            st_.lo = alu_out.lo;
    }
    if (load_issued) {
        load_pending_ = true;
        load_reg_ = load_rd;
        load_val_ = load_v;
    }

    if (inst.branch) {
        const isa::BranchPiece &b = *inst.branch;
        if (b.cond != isa::Cond::NEVER) {
            if (exit_pending_) {
                return fail(idx,
                            "control transfer inside a delay shadow");
            }
            SymExit e;
            e.at = idx;
            fillBranchTarget(&e, unit_, idx, b, it);
            if (b.cond == isa::Cond::ALWAYS) {
                e.kind = SymExitKind::GOTO;
            } else {
                e.kind = SymExitKind::BRANCH;
                e.cond = arena_.cmp(b.cond, br_rs, br_s2);
            }
            pexit_ = std::move(e);
            pslots_ = isa::kBranchDelay;
            exit_pending_ = true;
        }
    } else if (inst.jump) {
        const isa::JumpPiece &j = *inst.jump;
        if (exit_pending_)
            return fail(idx, "control transfer inside a delay shadow");
        SymExit e;
        e.at = idx;
        if (isa::jumpIsTable(j.kind)) {
            // The table fetch issues at the jump word: the target term
            // is frozen now, before the delay shadow's own memory
            // effects commit (HZ007 forbids shadow stores anyway).
            e.kind = SymExitKind::JUMP_TABLE;
            e.target = arena_.memLoad(st_.mem,
                                      arena_.add(jump_tv, jump_iv));
            e.label = it.target;
        } else if (isa::jumpIsIndirect(j.kind))
            e.target = jump_tv;
        else if (!it.target.empty())
            e.label = it.target;
        else {
            e.has_addr = true;
            e.addr = j.target_addr;
        }
        if (isa::jumpIsCall(j.kind)) {
            setReg(j.link, arena_.input(kInputCallLink));
            e.kind = SymExitKind::CALL;
        } else if (!isa::jumpIsTable(j.kind)) {
            e.kind = isa::jumpIsIndirect(j.kind)
                         ? SymExitKind::JUMP_INDIRECT
                         : SymExitKind::GOTO;
        }
        pexit_ = std::move(e);
        pslots_ = isa::jumpDelay(j.kind);
        exit_pending_ = true;
    } else if (inst.special) {
        const isa::SpecialPiece &sp = *inst.special;
        switch (sp.op) {
          case isa::SpecialOp::NOP:
            break;
          case isa::SpecialOp::HALT:
          case isa::SpecialOp::TRAP:
          case isa::SpecialOp::RFE: {
            if (exit_pending_) {
                return fail(idx,
                            "control transfer inside a delay shadow");
            }
            SymExit e;
            e.at = idx;
            e.kind = sp.op == isa::SpecialOp::HALT
                         ? SymExitKind::HALT
                         : sp.op == isa::SpecialOp::TRAP
                               ? SymExitKind::TRAP
                               : SymExitKind::RFE;
            e.trap_code = sp.trap_code;
            pushFinal(std::move(e));
            return Step::FINAL;
          }
          case isa::SpecialOp::MFS:
            if (sp.sreg == isa::SpecialReg::LO)
                setReg(sp.reg, st_.lo);
            else
                setReg(sp.reg,
                       arena_.sysRead(st_.sys,
                                      static_cast<uint8_t>(sp.sreg)));
            break;
          case isa::SpecialOp::MTS:
            if (sp.sreg == isa::SpecialReg::LO)
                st_.lo = special_val;
            else
                st_.sys = arena_.sysEffect(
                    st_.sys, static_cast<uint8_t>(sp.sreg),
                    special_val);
            break;
        }
    }
    return Step::CONTINUE;
}

} // namespace

SymRun
runSequential(ExprArena &arena, const assembler::Unit &unit,
              const RegionMap &map, size_t start, const SymState &entry,
              const SymLimits &limits)
{
    Interp interp(arena, unit, map, limits, /*pipeline=*/false);
    return interp.run(start, entry);
}

SymRun
runPipeline(ExprArena &arena, const assembler::Unit &unit,
            const RegionMap &map, size_t start, const SymState &entry,
            const SymLimits &limits)
{
    Interp interp(arena, unit, map, limits, /*pipeline=*/true);
    return interp.run(start, entry);
}

bool
advanceSequential(ExprArena &arena, const assembler::Unit &unit,
                  size_t start, size_t count, SymState *state)
{
    for (size_t i = 0; i < count; ++i) {
        size_t idx = start + i;
        if (idx >= unit.items.size())
            return false;
        const assembler::Item &it = unit.items[idx];
        if (it.is_data || it.no_reorder)
            return false;
        const Instruction &inst = it.inst;
        if (inst.branch || inst.jump)
            return false;
        if (inst.special &&
            inst.special->op != isa::SpecialOp::NOP)
            return false;
        if (inst.mem && inst.mem->mode != isa::MemMode::LONG_IMM)
            return false;
        if (inst.alu) {
            const isa::AluPiece &p = *inst.alu;
            ExprRef rs = state->regs[p.rs];
            ExprRef s2 = p.src2.is_imm ? arena.konst(p.src2.imm4)
                                       : state->regs[p.src2.reg];
            auto out = isa::evalAluSymbolic(p, arena, rs, s2,
                                            state->regs[p.rd],
                                            state->lo);
            if (out.writes_rd && p.rd != isa::kZeroReg)
                state->regs[p.rd] = out.rd;
            if (out.writes_lo)
                state->lo = out.lo;
        }
        if (inst.mem) {
            const isa::MemPiece &m = *inst.mem;
            ExprRef v = it.target.empty()
                            ? arena.konst(static_cast<uint32_t>(m.imm))
                            : arena.labelAddr(it.target);
            if (m.rd != isa::kZeroReg)
                state->regs[m.rd] = v;
        }
    }
    return true;
}

} // namespace mips::verify
