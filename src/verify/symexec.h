/**
 * @file
 * Symbolic execution over the ISA semantics, for translation
 * validation of the reorganizer (see tv.h).
 *
 * Machine state is represented as terms in a hash-consed expression
 * DAG (ExprArena): two terms are semantically identical whenever they
 * normalize to the same node, so state comparison is pointer (ref)
 * equality. The arena's smart constructors perform the normalization
 * the validator relies on:
 *
 *  - constant folding and the usual ALU identities (x+0, x|0, x^x,
 *    shift-by-0, constant reassociation of ADD chains, canonical
 *    operand order for commutative operators);
 *  - memory as an ordered store log: STORE(prev, addr, val) chains
 *    rooted at MEM_INIT. Chains of *provably disjoint* stores are
 *    kept insertion-sorted by address term so any legal reordering of
 *    independent stores normalizes to the same chain, and LOAD nodes
 *    forward from / skip over stores exactly when the reorganizer's
 *    own alias discipline (reorg::Dag::mayAlias) would allow the
 *    reordering: equal address terms forward, both-constant distinct
 *    non-volatile addresses or same-base-term distinct-displacement
 *    addresses skip, anything else is left opaque.
 *
 * Two interpreters produce region runs over the same arena:
 * runSequential() implements the sequential (functional-machine)
 * semantics for the legal input unit, and runPipeline() implements
 * the interlock-free pipeline semantics (load delay slots, packed
 * pieces reading pre-instruction state, 1- and 2-word delay shadows
 * whose slots execute before a taken transfer) for the reorganized
 * output unit. Because both build terms in one shared arena, "the
 * same value" on both sides is literally the same ExprRef.
 */
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "asm/unit.h"
#include "isa/cond.h"
#include "reorg/dag.h"

namespace mips::verify {

/** Reference to a node in an ExprArena (index into the node table). */
using ExprRef = uint32_t;

/** Null reference (field unused). */
constexpr ExprRef kNoExpr = static_cast<ExprRef>(-1);

/** Expression node operators. */
enum class ExprOp : uint8_t
{
    CONST,      ///< value = the constant
    INPUT,      ///< value = input id (entry register, opaque token)
    LABEL_ADDR, ///< value = interned label id; the label's link address
    ADD, SUB, AND, OR, XOR, NOT,
    SHL, SHRL, SHRA, ///< b is the shift amount, masked to 5 bits
    XBYTE,      ///< extract byte: a = byte selector, b = word
    IBYTE,      ///< insert byte: a = old word, b = source, c = selector
    CMP,        ///< aux = Cond; 1 if evalCond(aux, a, b) else 0
    SELECT,     ///< a != 0 ? b : c
    MEM_INIT,   ///< initial memory
    MEM_STORE,  ///< a = prev memory, b = address, c = value
    MEM_LOAD,   ///< a = memory, b = address
    SYS_INIT,   ///< initial system (special-register) state
    SYS_EFFECT, ///< a = prev system state, b = value, aux = SpecialReg
    SYS_READ,   ///< a = system state, aux = SpecialReg
};

/** One expression node. Nodes are immutable once interned. */
struct ExprNode
{
    ExprOp op = ExprOp::CONST;
    uint8_t aux = 0; ///< Cond for CMP; SpecialReg for SYS_EFFECT/READ
    ExprRef a = kNoExpr;
    ExprRef b = kNoExpr;
    ExprRef c = kNoExpr;
    uint32_t value = 0; ///< CONST value / INPUT id / label id

    bool operator==(const ExprNode &) const = default;
};

/** Reserved INPUT ids. Entry GPR r(n) is id n (1..15). */
constexpr uint32_t kInputLo = 16;       ///< entry value of LO
constexpr uint32_t kInputCallLink = 17; ///< opaque call return address

/**
 * Hash-consing expression arena with normalizing smart constructors.
 * Satisfies the expression-builder contract of isa/symbolic.h, so
 * isa::evalAluSymbolic<ExprArena> *is* the symbolic ALU.
 */
class ExprArena
{
  public:
    using Expr = ExprRef; ///< builder contract for isa/symbolic.h

    explicit ExprArena(const reorg::AliasOptions &alias =
                           reorg::AliasOptions{},
                       size_t max_nodes = 1u << 20);

    // --- leaves -------------------------------------------------
    ExprRef konst(uint32_t v);
    ExprRef input(uint32_t id);
    ExprRef labelAddr(const std::string &label);

    // --- ALU (the isa/symbolic.h builder contract) --------------
    ExprRef add(ExprRef a, ExprRef b);
    ExprRef sub(ExprRef a, ExprRef b);
    ExprRef and_(ExprRef a, ExprRef b);
    ExprRef or_(ExprRef a, ExprRef b);
    ExprRef xor_(ExprRef a, ExprRef b);
    ExprRef not_(ExprRef a);
    ExprRef shl(ExprRef a, ExprRef amt);
    ExprRef shrl(ExprRef a, ExprRef amt);
    ExprRef shra(ExprRef a, ExprRef amt);
    ExprRef extractByte(ExprRef sel, ExprRef w);
    ExprRef insertByte(ExprRef old, ExprRef src, ExprRef sel);
    ExprRef cmp(isa::Cond c, ExprRef a, ExprRef b);
    ExprRef select(ExprRef c, ExprRef t, ExprRef f);

    // --- memory and system state --------------------------------
    ExprRef memInit();
    ExprRef memStore(ExprRef mem, ExprRef addr, ExprRef val);
    ExprRef memLoad(ExprRef mem, ExprRef addr);
    ExprRef sysInit();
    ExprRef sysEffect(ExprRef sys, uint8_t sreg, ExprRef val);
    ExprRef sysRead(ExprRef sys, uint8_t sreg);

    const ExprNode &node(ExprRef r) const { return nodes_[r]; }
    size_t size() const { return nodes_.size(); }

    /** True once the node budget was exhausted; all results after
     *  that point are unreliable and the caller must give up. */
    bool overflowed() const { return overflowed_; }

    /**
     * True if the two address terms provably name different words
     * under the reorganizer's alias discipline (both constant,
     * distinct, and below the volatile window; or same base term with
     * distinct constant displacements). Conservative: false means
     * "might alias", not "do alias".
     */
    bool definitelyDisjoint(ExprRef p, ExprRef q) const;

    /** Compact, depth-limited rendering for diagnostics. */
    std::string str(ExprRef r, int max_depth = 4) const;

  private:
    struct NodeHash
    {
        size_t operator()(const ExprNode &n) const;
    };

    ExprRef intern(ExprNode n);
    /** Split `addr` into (base term, constant offset); base kNoExpr
     *  means the address is the constant itself. */
    std::pair<ExprRef, uint32_t> decompose(ExprRef addr) const;

    reorg::AliasOptions alias_;
    size_t max_nodes_;
    bool overflowed_ = false;
    std::vector<ExprNode> nodes_;
    std::unordered_map<ExprNode, ExprRef, NodeHash> interned_;
    std::map<std::string, uint32_t> label_ids_;
};

/** Symbolic machine state. regs[0] is always the zero constant. */
struct SymState
{
    std::array<ExprRef, 16> regs{};
    ExprRef lo = kNoExpr;
    ExprRef mem = kNoExpr;
    ExprRef sys = kNoExpr;
};

/** The canonical region-entry state: fresh inputs for every GPR and
 *  LO, initial memory and system state. */
SymState entryState(ExprArena &arena);

/** How a symbolic region run left the region. */
enum class SymExitKind : uint8_t
{
    FALL_LABEL,    ///< fell into a labeled item (see `label`)
    FALL_FENCE,    ///< fell into a .noreorder/data run (`ordinal`)
    FALL_END,      ///< fell off the end of the unit
    BRANCH,        ///< conditional branch (side exit; run continues)
    GOTO,          ///< unconditional branch or direct jump
    CALL,          ///< direct or indirect call (link already written)
    JUMP_INDIRECT, ///< indirect jump through a register
    TRAP,          ///< trap instruction (`trap_code`)
    RFE,           ///< return from exception
    HALT,          ///< halt
    JUMP_TABLE,    ///< table dispatch (`target` = fetched entry term)
};

/** One region exit: where control goes and the state it goes with. */
struct SymExit
{
    SymExitKind kind = SymExitKind::FALL_END;
    ExprRef cond = kNoExpr;    ///< BRANCH: 0/1 condition term
    std::string label;         ///< symbolic target, if any
    bool has_addr = false;     ///< numeric target valid
    uint32_t addr = 0;         ///< numeric target
    ExprRef target = kNoExpr;  ///< indirect target term
    uint16_t trap_code = 0;    ///< TRAP
    size_t ordinal = 0;        ///< FALL_FENCE: fenced-run ordinal
    size_t at = 0;             ///< item index of the exiting word
    SymState state;            ///< architectural state at the exit
};

/** Result of symbolically executing one region. */
struct SymRun
{
    /** Side exits in program order, then exactly one final exit. */
    std::vector<SymExit> exits;
    bool ok = false;     ///< false: inconclusive (see why/fail_at)
    std::string why;
    size_t fail_at = 0;
};

/** Per-run resource limits. */
struct SymLimits
{
    size_t max_steps = 4096;
};

/**
 * Static region geometry for one unit, shared by both interpreters:
 * where runs must stop and how fenced (.noreorder / data) items are
 * grouped into ordinal-numbered runs.
 */
struct RegionMap
{
    /** stop[i]: a run entering item i (other than at its start) must
     *  exit with FALL_LABEL named stop_label[i]. */
    std::vector<char> stop;
    std::vector<std::string> stop_label;
    /** fence[i]: ordinal of the fenced run containing item i, or -1. */
    std::vector<int> fence;
};

/** Build the region map: stops at every item carrying a label for
 *  which `known` returns true (null = all labels). */
RegionMap buildRegionMap(const assembler::Unit &unit,
                         const std::map<std::string, size_t> *known);

/**
 * Run the *sequential* (functional-machine) semantics from item
 * `start` until a region boundary. Transfers take effect
 * immediately; there are no delay slots and no load delay.
 */
SymRun runSequential(ExprArena &arena, const assembler::Unit &unit,
                     const RegionMap &map, size_t start,
                     const SymState &entry, const SymLimits &limits);

/**
 * Run the *pipeline* semantics from item `start` until a region
 * boundary: operand reads see pre-instruction state, a load's
 * register write commits one word later (before that word's own
 * writes), and taken transfers execute their 1- or 2-word delay
 * shadow before leaving.
 */
SymRun runPipeline(ExprArena &arena, const assembler::Unit &unit,
                   const RegionMap &map, size_t start,
                   const SymState &entry, const SymLimits &limits);

/**
 * Advance `state` by sequentially executing `count` items starting at
 * `start` — used by the validator to replay scheme-2 duplicated
 * words on the input side of a retargeted exit. Only slot-safe words
 * (ALU, long-immediate moves, no-ops) are allowed; returns false
 * (state unspecified) on anything else.
 */
bool advanceSequential(ExprArena &arena, const assembler::Unit &unit,
                       size_t start, size_t count, SymState *state);

} // namespace mips::verify
