#include "verify/tv.h"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>

#include "isa/branch.h"
#include "isa/instruction.h"
#include "isa/registers.h"
#include "obs/catalog.h"
#include "support/strings.h"

namespace mips::verify {

namespace {

using assembler::Item;
using assembler::Unit;

constexpr uint16_t kAllRegs = 0xfffe; // r0 is never compared

/** Label -> item index (trailing labels map to items.size()). */
std::map<std::string, size_t>
labelIndex(const Unit &unit)
{
    std::map<std::string, size_t> map;
    for (size_t i = 0; i < unit.items.size(); ++i)
        for (const std::string &label : unit.items[i].labels)
            map[label] = i;
    for (const std::string &label : unit.trailing_labels)
        map[label] = unit.items.size();
    return map;
}

/** Fenced runs in ordinal order, as [first, last] item ranges. */
std::vector<std::pair<size_t, size_t>>
fenceRuns(const RegionMap &map)
{
    std::vector<std::pair<size_t, size_t>> runs;
    for (size_t i = 0; i < map.fence.size(); ++i) {
        if (map.fence[i] < 0)
            continue;
        if (static_cast<size_t>(map.fence[i]) == runs.size())
            runs.emplace_back(i, i);
        else
            runs.back().second = i;
    }
    return runs;
}

const char *
exitKindName(SymExitKind k)
{
    switch (k) {
      case SymExitKind::FALL_LABEL: return "fall-through to a label";
      case SymExitKind::FALL_FENCE:
        return "fall-through into a fenced run";
      case SymExitKind::FALL_END: return "fall off the end of the unit";
      case SymExitKind::BRANCH: return "conditional branch";
      case SymExitKind::GOTO: return "unconditional transfer";
      case SymExitKind::CALL: return "call";
      case SymExitKind::JUMP_INDIRECT: return "indirect jump";
      case SymExitKind::TRAP: return "trap";
      case SymExitKind::RFE: return "return from exception";
      case SymExitKind::HALT: return "halt";
      case SymExitKind::JUMP_TABLE: return "table dispatch";
    }
    return "?";
}

/** Target-label sequence of the dispatch table at `label`: the
 *  contiguous run of relocated .word entries from the label. Empty
 *  optional when the table cannot be located. */
std::optional<std::vector<std::string>>
tableEntryLabels(const Unit &unit,
                 const std::map<std::string, size_t> &labels,
                 const std::string &label)
{
    if (label.empty())
        return std::nullopt;
    auto it = labels.find(label);
    if (it == labels.end())
        return std::nullopt;
    std::vector<std::string> out;
    for (size_t i = it->second; i < unit.items.size(); ++i) {
        const Item &item = unit.items[i];
        if (!item.is_data || item.target.empty())
            break;
        out.push_back(item.target);
    }
    if (out.empty())
        return std::nullopt;
    return out;
}

std::string
regListNames(uint16_t mask)
{
    std::string out;
    for (int r = 1; r < isa::kNumRegs; ++r) {
        if (!(mask & (1u << r)))
            continue;
        if (!out.empty())
            out += ", ";
        out += support::strprintf("r%d", r);
    }
    return out;
}

/**
 * One validation run: pairs regions of the input and output units,
 * symbolically executes both sides of every pair, and reports any
 * divergence (TV001-TV006) or unproven region (TV090).
 */
class Validator
{
  public:
    Validator(const Unit &input, const Unit &output,
              const std::vector<reorg::DupHint> &hints,
              const TvOptions &opts)
        : input_(input), output_(output), hints_(hints), opts_(opts),
          engine_(&output)
    {}

    VerifyReport run();

  private:
    /** One paired region entry. `pre_*` replays scheme-2 duplicated
     *  output words on the output entry state before the run. */
    struct Entry
    {
        size_t in_at = 0;
        size_t out_at = 0;
        std::string name;
        bool has_pre = false;
        size_t pre_start = 0;
        size_t pre_count = 0;
    };

    void compareFences();
    void seedEntries();
    void validateEntry(const Entry &e);
    void compareExit(ExprArena &arena, const Entry &e, const SymExit &a,
                     const SymExit &b);
    bool compareStates(ExprArena &arena, const Entry &e, size_t at,
                       const SymState &a, const SymState &b,
                       uint16_t mask, const char *where);
    uint16_t liveAtLabel(const std::string &label) const;
    const reorg::DupHint *findHint(const std::string &orig,
                                   const std::string &dup) const;
    void enqueue(Entry e);

    size_t
    outSite(size_t at) const
    {
        return at < output_.items.size() ? at : kNoItem;
    }

    void
    note(size_t at, std::string msg)
    {
        engine_.report(Code::TV090, Severity::NOTE, at, std::move(msg));
    }

    const Unit &input_;
    const Unit &output_;
    const std::vector<reorg::DupHint> &hints_;
    TvOptions opts_;
    DiagnosticEngine engine_;

    std::map<std::string, size_t> in_labels_, out_labels_;
    RegionMap in_map_, out_map_;
    std::map<size_t, uint16_t> live_in_; ///< input block start -> mask
    std::vector<Entry> work_;
    std::set<std::tuple<size_t, size_t, bool>> seen_;
};

void
Validator::enqueue(Entry e)
{
    if (!seen_.emplace(e.in_at, e.out_at, e.has_pre).second)
        return;
    work_.push_back(std::move(e));
}

uint16_t
Validator::liveAtLabel(const std::string &label) const
{
    auto it = in_labels_.find(label);
    if (it == in_labels_.end())
        return kAllRegs;
    auto lv = live_in_.find(it->second);
    return lv == live_in_.end() ? kAllRegs : lv->second;
}

const reorg::DupHint *
Validator::findHint(const std::string &orig, const std::string &dup) const
{
    for (const reorg::DupHint &h : hints_) {
        if (h.orig_label == orig && h.dup_label == dup)
            return &h;
    }
    return nullptr;
}

void
Validator::compareFences()
{
    auto in_runs = fenceRuns(in_map_);
    auto out_runs = fenceRuns(out_map_);
    if (in_runs.size() != out_runs.size()) {
        engine_.report(
            Code::TV005, Severity::ERROR, kNoItem,
            support::strprintf(
                "input has %zu fenced (.noreorder/data) run(s) but the "
                "output has %zu",
                in_runs.size(), out_runs.size()));
    }
    size_t n = std::min(in_runs.size(), out_runs.size());
    for (size_t r = 0; r < n; ++r) {
        size_t in_len = in_runs[r].second - in_runs[r].first + 1;
        size_t out_len = out_runs[r].second - out_runs[r].first + 1;
        if (in_len != out_len) {
            engine_.report(
                Code::TV005, Severity::ERROR, out_runs[r].first,
                support::strprintf(
                    "fenced run %zu changed length: %zu word(s) in, "
                    "%zu out", r, in_len, out_len));
            continue;
        }
        for (size_t k = 0; k < in_len; ++k) {
            const Item &a = input_.items[in_runs[r].first + k];
            const Item &b = output_.items[out_runs[r].first + k];
            bool same = a.is_data == b.is_data && a.target == b.target;
            if (same && a.is_data)
                same = a.data_value == b.data_value;
            if (same && !a.is_data)
                same = a.inst == b.inst;
            if (!same) {
                engine_.report(
                    Code::TV005, Severity::ERROR,
                    out_runs[r].first + k,
                    support::strprintf(
                        "fenced run %zu word %zu differs from the "
                        "input (fenced code must pass through "
                        "verbatim)", r, k));
            }
        }
        // Execution resumes past the run on both sides; prove the
        // continuation like any other region pair.
        enqueue(Entry{in_runs[r].second + 1, out_runs[r].second + 1,
                      support::strprintf("after fenced run %zu", r),
                      false, 0, 0});
    }
}

void
Validator::seedEntries()
{
    enqueue(Entry{0, 0, "the unit entry", false, 0, 0});

    for (const auto &[label, in_at] : in_labels_) {
        auto it = out_labels_.find(label);
        if (it == out_labels_.end()) {
            engine_.report(
                Code::TV005, Severity::ERROR, kNoItem,
                support::strprintf(
                    "input label '%s' does not exist in the output",
                    label.c_str()));
            continue;
        }
        size_t out_at = it->second;
        bool in_fenced = in_at < input_.items.size() &&
                         in_map_.fence[in_at] >= 0;
        bool out_fenced = out_at < output_.items.size() &&
                          out_map_.fence[out_at] >= 0;
        if (in_fenced != out_fenced) {
            engine_.report(
                Code::TV005, Severity::ERROR, outSite(out_at),
                support::strprintf(
                    "label '%s' is %sside a fenced run in the input "
                    "but %sside one in the output",
                    label.c_str(), in_fenced ? "in" : "out",
                    out_fenced ? "in" : "out"));
            continue;
        }
        if (in_fenced)
            continue; // covered by the verbatim fence comparison
        enqueue(Entry{in_at, out_at, "region '" + label + "'", false, 0,
                      0});
    }

    // Scheme-2 provenance: prove the retargeted continuation. Input
    // runs from the original target; the output entry state is first
    // advanced over the duplicated words (which the transfer's delay
    // slot executed on the way in), then the output runs from the new
    // target.
    for (const reorg::DupHint &h : hints_) {
        auto in_orig = in_labels_.find(h.orig_label);
        auto out_orig = out_labels_.find(h.orig_label);
        auto out_dup = out_labels_.find(h.dup_label);
        if (in_orig == in_labels_.end() ||
            out_orig == out_labels_.end() ||
            out_dup == out_labels_.end() ||
            out_dup->second <= out_orig->second) {
            engine_.report(
                Code::TV005, Severity::ERROR, kNoItem,
                support::strprintf(
                    "scheme-2 hint '%s' -> '%s' does not name a "
                    "forward label pair present in both units",
                    h.orig_label.c_str(), h.dup_label.c_str()));
            continue;
        }
        Entry e;
        e.in_at = in_orig->second;
        e.out_at = out_dup->second;
        e.name = "region '" + h.dup_label + "' (duplicated from '" +
                 h.orig_label + "')";
        e.has_pre = true;
        e.pre_start = out_orig->second;
        e.pre_count = out_dup->second - out_orig->second;
        enqueue(std::move(e));
    }
}

bool
Validator::compareStates(ExprArena &arena, const Entry &e, size_t at,
                         const SymState &a, const SymState &b,
                         uint16_t mask, const char *where)
{
    bool clean = true;
    uint16_t bad = 0;
    for (int r = 1; r < isa::kNumRegs; ++r) {
        if ((mask & (1u << r)) && a.regs[r] != b.regs[r])
            bad |= static_cast<uint16_t>(1u << r);
    }
    if (bad) {
        int first = 1;
        while (!(bad & (1u << first)))
            ++first;
        engine_.report(
            Code::TV001, Severity::ERROR, at,
            support::strprintf(
                "%s, %s: %s diverge(s); r%d is %s sequentially but %s "
                "on the pipeline",
                e.name.c_str(), where, regListNames(bad).c_str(), first,
                arena.str(a.regs[first]).c_str(),
                arena.str(b.regs[first]).c_str()));
        clean = false;
    }
    if (a.lo != b.lo) {
        engine_.report(
            Code::TV006, Severity::ERROR, at,
            support::strprintf(
                "%s, %s: LO diverges; %s sequentially but %s on the "
                "pipeline",
                e.name.c_str(), where, arena.str(a.lo).c_str(),
                arena.str(b.lo).c_str()));
        clean = false;
    }
    if (a.sys != b.sys) {
        engine_.report(
            Code::TV006, Severity::ERROR, at,
            support::strprintf(
                "%s, %s: the system-state effect log diverges; %s "
                "sequentially but %s on the pipeline",
                e.name.c_str(), where, arena.str(a.sys).c_str(),
                arena.str(b.sys).c_str()));
        clean = false;
    }
    if (a.mem != b.mem) {
        engine_.report(
            Code::TV002, Severity::ERROR, at,
            support::strprintf(
                "%s, %s: the memory store log diverges; %s "
                "sequentially but %s on the pipeline",
                e.name.c_str(), where, arena.str(a.mem, 3).c_str(),
                arena.str(b.mem, 3).c_str()));
        clean = false;
    }
    return clean;
}

void
Validator::compareExit(ExprArena &arena, const Entry &e,
                       const SymExit &a, const SymExit &b)
{
    size_t at = outSite(b.at);
    if (a.kind != b.kind) {
        engine_.report(
            Code::TV003, Severity::ERROR, at,
            support::strprintf(
                "%s: paired exits disagree in kind: %s sequentially "
                "but %s on the pipeline",
                e.name.c_str(), exitKindName(a.kind),
                exitKindName(b.kind)));
        return;
    }

    bool states_compared = false;
    switch (a.kind) {
      case SymExitKind::FALL_END:
        break;
      case SymExitKind::HALT:
      case SymExitKind::RFE:
        break;
      case SymExitKind::TRAP:
        if (a.trap_code != b.trap_code) {
            engine_.report(
                Code::TV003, Severity::ERROR, at,
                support::strprintf(
                    "%s: trap codes differ: %u sequentially but %u on "
                    "the pipeline",
                    e.name.c_str(), a.trap_code, b.trap_code));
        }
        break;
      case SymExitKind::FALL_FENCE:
        if (a.ordinal != b.ordinal) {
            engine_.report(
                Code::TV003, Severity::ERROR, at,
                support::strprintf(
                    "%s: control falls into fenced run %zu "
                    "sequentially but run %zu on the pipeline",
                    e.name.c_str(), a.ordinal, b.ordinal));
        }
        break;
      case SymExitKind::JUMP_TABLE: {
        // TV007: the fetched entry term covers both the fetch address
        // (base + index) and the memory it reads from — any divergence
        // means the two sides can dispatch to different places.
        if (a.target != b.target) {
            engine_.report(
                Code::TV007, Severity::ERROR, at,
                support::strprintf(
                    "%s: table dispatch fetches %s sequentially but %s "
                    "on the pipeline",
                    e.name.c_str(), arena.str(a.target).c_str(),
                    arena.str(b.target).c_str()));
        }
        // TV008: the tables themselves must resolve to the same
        // entry-label sequence — a swapped or dropped entry changes
        // where an in-bounds index lands even when the fetch terms
        // agree symbolically.
        auto in_entries = tableEntryLabels(input_, in_labels_, a.label);
        auto out_entries =
            tableEntryLabels(output_, out_labels_, b.label);
        if (!in_entries || !out_entries) {
            note(at, e.name + ": cannot resolve the dispatch table for "
                     "the entry-sequence comparison");
            break;
        }
        if (*in_entries != *out_entries) {
            size_t k = 0;
            while (k < in_entries->size() && k < out_entries->size() &&
                   (*in_entries)[k] == (*out_entries)[k])
                ++k;
            std::string what;
            if (k >= in_entries->size() || k >= out_entries->size()) {
                what = support::strprintf(
                    "the input table has %zu entr%s but the output has "
                    "%zu",
                    in_entries->size(),
                    in_entries->size() == 1 ? "y" : "ies",
                    out_entries->size());
            } else {
                what = support::strprintf(
                    "entry %zu targets '%s' in the input but '%s' in "
                    "the output",
                    k, (*in_entries)[k].c_str(),
                    (*out_entries)[k].c_str());
            }
            engine_.report(
                Code::TV008, Severity::ERROR, at,
                support::strprintf("%s: dispatch tables differ: %s",
                                   e.name.c_str(), what.c_str()));
        }
        break;
      }
      case SymExitKind::JUMP_INDIRECT:
        if (a.target != b.target) {
            engine_.report(
                Code::TV003, Severity::ERROR, at,
                support::strprintf(
                    "%s: indirect targets differ: %s sequentially but "
                    "%s on the pipeline",
                    e.name.c_str(), arena.str(a.target).c_str(),
                    arena.str(b.target).c_str()));
        }
        break;
      case SymExitKind::FALL_LABEL:
      case SymExitKind::BRANCH:
      case SymExitKind::GOTO:
      case SymExitKind::CALL: {
        if (a.kind == SymExitKind::CALL && a.target != b.target) {
            engine_.report(
                Code::TV003, Severity::ERROR, at,
                support::strprintf(
                    "%s: indirect call targets differ: %s sequentially "
                    "but %s on the pipeline",
                    e.name.c_str(), arena.str(a.target).c_str(),
                    arena.str(b.target).c_str()));
            break;
        }
        if (a.kind == SymExitKind::BRANCH && a.cond != b.cond) {
            engine_.report(
                Code::TV004, Severity::ERROR, at,
                support::strprintf(
                    "%s: branch conditions differ: %s sequentially but "
                    "%s on the pipeline",
                    e.name.c_str(), arena.str(a.cond).c_str(),
                    arena.str(b.cond).c_str()));
        }
        if (!a.label.empty() && !b.label.empty()) {
            if (a.label != b.label) {
                const reorg::DupHint *hint =
                    (a.kind == SymExitKind::GOTO ||
                     a.kind == SymExitKind::CALL)
                        ? findHint(a.label, b.label)
                        : nullptr;
                if (!hint) {
                    engine_.report(
                        Code::TV003, Severity::ERROR, at,
                        support::strprintf(
                            "%s: transfer targets '%s' sequentially "
                            "but '%s' on the pipeline",
                            e.name.c_str(), a.label.c_str(),
                            b.label.c_str()));
                    break;
                }
                // Scheme-2 retarget: the pipeline already executed the
                // duplicated words in the delay slot. Replay them on
                // the sequential side and the states must agree fully.
                auto out_orig = out_labels_.find(a.label);
                auto out_dup = out_labels_.find(b.label);
                if (out_orig == out_labels_.end() ||
                    out_dup == out_labels_.end() ||
                    out_dup->second <= out_orig->second) {
                    note(at, e.name + ": cannot locate the duplicated "
                             "words for the retargeted exit");
                    break;
                }
                SymState adv = a.state;
                size_t k = out_dup->second - out_orig->second;
                if (!advanceSequential(arena, output_,
                                       out_orig->second, k, &adv)) {
                    note(at,
                         e.name + ": cannot replay the duplicated "
                                  "words for the retargeted exit");
                    break;
                }
                compareStates(arena, e, at, adv, b.state, kAllRegs,
                              "at the retargeted exit");
                states_compared = true;
            }
        } else if (a.has_addr && b.has_addr) {
            if (a.addr != b.addr) {
                engine_.report(
                    Code::TV003, Severity::ERROR, at,
                    support::strprintf(
                        "%s: transfer targets address %u sequentially "
                        "but %u on the pipeline",
                        e.name.c_str(), a.addr, b.addr));
                break;
            }
        } else if (!a.label.empty() || !b.label.empty() || a.has_addr ||
                   b.has_addr) {
            note(at, e.name + ": cannot compare a symbolic transfer "
                     "target against a numeric one");
            return;
        }
        break;
      }
    }

    if (!states_compared) {
        // Conditional side exits are compared modulo the registers
        // live at the taken target — this is exactly what licenses
        // scheme-3 hoisting (dead-on-taken-path writes may differ).
        uint16_t mask = kAllRegs;
        const char *where = "at the region exit";
        if (a.kind == SymExitKind::BRANCH) {
            where = "on the taken path";
            if (!a.label.empty())
                mask = liveAtLabel(a.label);
        }
        compareStates(arena, e, at, a.state, b.state, mask, where);
    }

    // Control returns after calls and traps; prove the continuation.
    if (a.kind == SymExitKind::CALL) {
        int delay = isa::kBranchDelay;
        if (b.at < output_.items.size() &&
            output_.items[b.at].inst.jump) {
            delay = isa::jumpDelay(output_.items[b.at].inst.jump->kind);
        }
        enqueue(Entry{a.at + 1, b.at + 1 + static_cast<size_t>(delay),
                      support::strprintf("the return point of the call "
                                         "at output word %zu", b.at),
                      false, 0, 0});
    } else if (a.kind == SymExitKind::TRAP) {
        enqueue(Entry{a.at + 1, b.at + 1,
                      support::strprintf("the continuation of the trap "
                                         "at output word %zu", b.at),
                      false, 0, 0});
    }
}

void
Validator::validateEntry(const Entry &e)
{
    ExprArena arena(opts_.alias);
    SymState in_entry = entryState(arena);
    SymState out_entry = entryState(arena);
    if (e.has_pre &&
        !advanceSequential(arena, output_, e.pre_start, e.pre_count,
                           &out_entry)) {
        note(outSite(e.out_at),
             e.name + ": cannot replay the duplicated words feeding "
                      "this region entry");
        return;
    }

    SymRun in_run = runSequential(arena, input_, in_map_, e.in_at,
                                  in_entry, opts_.limits);
    SymRun out_run = runPipeline(arena, output_, out_map_, e.out_at,
                                 out_entry, opts_.limits);
    if (!in_run.ok) {
        note(outSite(e.out_at),
             e.name + " is not proven: sequential side: " + in_run.why);
        return;
    }
    if (!out_run.ok) {
        note(outSite(out_run.fail_at),
             e.name + " is not proven: pipeline side: " + out_run.why);
        return;
    }
    if (in_run.exits.size() != out_run.exits.size()) {
        engine_.report(
            Code::TV005, Severity::ERROR, outSite(e.out_at),
            support::strprintf(
                "%s: the sequential side has %zu exit(s) but the "
                "pipeline side has %zu; the regions cannot be paired",
                e.name.c_str(), in_run.exits.size(),
                out_run.exits.size()));
        return;
    }
    for (size_t i = 0; i < in_run.exits.size(); ++i)
        compareExit(arena, e, in_run.exits[i], out_run.exits[i]);
}

VerifyReport
Validator::run()
{
    in_labels_ = labelIndex(input_);
    out_labels_ = labelIndex(output_);
    in_map_ = buildRegionMap(input_, nullptr);
    out_map_ = buildRegionMap(output_, &in_labels_);
    for (const auto &[start, mask] : reorg::blockLiveIn(input_))
        live_in_[start] = mask;

    compareFences();
    seedEntries();
    for (size_t i = 0; i < work_.size(); ++i) { // grows as exits derive
        if (i >= 4096) {
            note(kNoItem, "region worklist budget exhausted; remaining "
                          "regions are not proven");
            break;
        }
        validateEntry(work_[i]);
    }

    engine_.sort();
    VerifyReport report;
    report.errors = engine_.errorCount();
    report.warnings = engine_.warningCount();
    report.notes = engine_.noteCount();
    report.diagnostics = engine_.diagnostics();
    return report;
}

} // namespace

VerifyReport
validateTranslation(const assembler::Unit &input,
                    const assembler::Unit &output,
                    const std::vector<reorg::DupHint> &hints,
                    const TvOptions &options)
{
    Validator validator(input, output, hints, options);
    VerifyReport report = validator.run();

    // Proof-outcome metrics: every run is exactly one of proved /
    // refuted / not_proven, and TV diagnostics join the per-code
    // verify.diag.* counts alongside the hazard verifier's.
    obs::TvMetrics &tm = obs::tvMetrics();
    tm.units->add();
    if (report.errors > 0)
        tm.refuted->add();
    else if (report.countOf(Code::TV090) > 0)
        tm.not_proven->add();
    else
        tm.proved->add();
    obs::VerifyMetrics &vm = obs::verifyMetrics();
    for (const Diagnostic &d : report.diagnostics)
        vm.diag[static_cast<size_t>(d.code)]->add();
    return report;
}

} // namespace mips::verify
