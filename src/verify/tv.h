/**
 * @file
 * Translation validation for the reorganizer.
 *
 * The reorganizer's correctness contract (reorganizer.h) was so far
 * only *tested* differentially: run the input on the functional
 * machine, the output on the pipeline, compare a sample of results.
 * This module upgrades the contract to a per-unit *proof*: for every
 * reorganized unit it symbolically executes the legal input under
 * sequential semantics and the reorganized output under pipeline
 * semantics (symexec.h) and proves the two leave identical
 * architectural state — for all register values, not a sample.
 *
 * The proof is region-modular. Both units are cut at the input unit's
 * labels and at fenced (.noreorder / data) runs; matching regions are
 * executed from a common fully-symbolic entry state and every exit is
 * compared: same exit kind and target, same branch condition, same
 * general registers (modulo taken-path liveness at conditional exits,
 * which licenses the paper's scheme-3 hoisting), same LO, same memory
 * store log (modulo provably-disjoint reordering), same system-state
 * effect log. Scheme-2 duplications are handled through the
 * reorganizer's DupHint provenance: a retargeted transfer is proven
 * correct by replaying the duplicated words on the input side and
 * comparing full states, plus a separate region proof for the
 * retargeted continuation.
 *
 * Every divergence is a TV001-TV006 ERROR. When the validator cannot
 * decide (expression budget, unsupported construct), it reports a
 * TV090 "TV-UNKNOWN" NOTE — never a silent pass.
 */
#pragma once

#include <vector>

#include "asm/unit.h"
#include "reorg/reorganizer.h"
#include "verify/symexec.h"
#include "verify/verify.h"

namespace mips::verify {

/** Knobs for one validation run. */
struct TvOptions
{
    /** Must match the alias discipline the reorganizer ran with. */
    reorg::AliasOptions alias;
    SymLimits limits;
};

/**
 * Prove `output` (pipeline semantics) equivalent to `input`
 * (sequential semantics). `hints` is the reorganizer's scheme-2
 * provenance (ReorgResult::hints). Diagnostics are located in the
 * output unit; TV090 notes mark regions that are *not proven*.
 */
VerifyReport
validateTranslation(const assembler::Unit &input,
                    const assembler::Unit &output,
                    const std::vector<reorg::DupHint> &hints,
                    const TvOptions &options = TvOptions{});

} // namespace mips::verify
