#include "verify/valuerange.h"

#include <algorithm>
#include <bit>
#include <set>

#include "isa/branch.h"
#include "isa/instruction.h"
#include "support/logging.h"

namespace mips::verify {

using assembler::Item;
using isa::AluOp;
using isa::AluPiece;
using isa::MemMode;
using isa::MemPiece;

namespace {

constexpr int64_t kWordSpan = kWordMax + 1; // 2^32

uint32_t
maskBits(unsigned k)
{
    return k >= 32 ? 0xffffffffu : ((1u << k) - 1);
}

/** Re-establish the representation invariants (a fully known value is
 *  a singleton interval; low_val carries no bits past low_bits). */
AbsVal
canon(AbsVal v)
{
    if (v.low_bits > 32)
        v.low_bits = 32;
    v.low_val &= maskBits(v.low_bits);
    if (v.low_bits == 32) {
        v.lo = v.low_val;
        v.hi = v.low_val;
    }
    return v;
}

AbsVal
makeInterval(int64_t lo, int64_t hi, bool widened)
{
    AbsVal v;
    v.lo = lo;
    v.hi = hi;
    v.widened = widened;
    return v;
}

/** Modular addition: exact when the sum interval fits one 2^32
 *  window (possibly the wrapped one); TOP interval otherwise. The
 *  known low bits always survive (addition is local in low bits). */
AbsVal
addVals(const AbsVal &a, const AbsVal &b)
{
    AbsVal r;
    r.low_bits = std::min(a.low_bits, b.low_bits);
    r.low_val = (a.low_val + b.low_val) & maskBits(r.low_bits);
    r.widened = a.widened || b.widened;
    int64_t lo = a.lo + b.lo;
    int64_t hi = a.hi + b.hi;
    if (hi <= kWordMax) {
        r.lo = lo;
        r.hi = hi;
    } else if (lo > kWordMax) {
        r.lo = lo - kWordSpan;
        r.hi = hi - kWordSpan;
    } else {
        r.lo = 0;
        r.hi = kWordMax;
    }
    return canon(r);
}

/** Modular subtraction, same window rule as addVals. */
AbsVal
subVals(const AbsVal &a, const AbsVal &b)
{
    AbsVal r;
    r.low_bits = std::min(a.low_bits, b.low_bits);
    r.low_val = (a.low_val - b.low_val) & maskBits(r.low_bits);
    r.widened = a.widened || b.widened;
    int64_t lo = a.lo - b.hi;
    int64_t hi = a.hi - b.lo;
    if (lo >= 0) {
        r.lo = lo;
        r.hi = hi;
    } else if (hi < 0) {
        r.lo = lo + kWordSpan;
        r.hi = hi + kWordSpan;
    } else {
        r.lo = 0;
        r.hi = kWordMax;
    }
    return canon(r);
}

/** Smallest all-ones value covering every bit `v` can set. */
int64_t
onesEnvelope(int64_t v)
{
    return static_cast<int64_t>(
        maskBits(std::bit_width(static_cast<uint64_t>(v))));
}

/** Longest known low-bit prefix of a bitwise op's result.
 *  `op` selects AND (0), OR (1), XOR (2). */
void
bitwiseLowBits(const AbsVal &a, const AbsVal &b, int op, AbsVal *r)
{
    unsigned k = 0;
    uint32_t val = 0;
    for (unsigned i = 0; i < 32; ++i) {
        bool ka = i < a.low_bits;
        bool kb = i < b.low_bits;
        int abit = ka ? (a.low_val >> i) & 1 : -1;
        int bbit = kb ? (b.low_val >> i) & 1 : -1;
        int out = -1;
        if (ka && kb) {
            out = op == 0 ? (abit & bbit)
                          : op == 1 ? (abit | bbit) : (abit ^ bbit);
        } else if (op == 0 && (abit == 0 || bbit == 0)) {
            out = 0; // AND with a known zero
        } else if (op == 1 && (abit == 1 || bbit == 1)) {
            out = 1; // OR with a known one
        }
        if (out < 0)
            break;
        k = i + 1;
        val |= static_cast<uint32_t>(out) << i;
    }
    r->low_bits = static_cast<uint8_t>(k);
    r->low_val = val;
}

AbsVal
andVals(const AbsVal &a, const AbsVal &b)
{
    AbsVal r;
    r.lo = 0;
    r.hi = std::min(a.hi, b.hi);
    bitwiseLowBits(a, b, 0, &r);
    r.widened = a.widened || b.widened;
    return canon(r);
}

AbsVal
orVals(const AbsVal &a, const AbsVal &b)
{
    AbsVal r;
    r.lo = std::max(a.lo, b.lo);
    r.hi = onesEnvelope(std::max(a.hi, b.hi));
    bitwiseLowBits(a, b, 1, &r);
    r.widened = a.widened || b.widened;
    return canon(r);
}

AbsVal
xorVals(const AbsVal &a, const AbsVal &b)
{
    AbsVal r;
    r.lo = 0;
    r.hi = onesEnvelope(std::max(a.hi, b.hi));
    bitwiseLowBits(a, b, 2, &r);
    r.widened = a.widened || b.widened;
    return canon(r);
}

AbsVal
notVal(const AbsVal &a)
{
    AbsVal r;
    r.lo = kWordMax - a.hi;
    r.hi = kWordMax - a.lo;
    r.low_bits = a.low_bits;
    r.low_val = ~a.low_val & maskBits(a.low_bits);
    r.widened = a.widened;
    return canon(r);
}

AbsVal
sllConst(const AbsVal &a, unsigned c)
{
    if (c == 0)
        return a;
    AbsVal r;
    // Low bits: the shift drags known bits up and shifts in zeros.
    r.low_bits = static_cast<uint8_t>(
        std::min<unsigned>(a.low_bits + c, 32));
    r.low_val = static_cast<uint32_t>(
                    static_cast<uint64_t>(a.low_val) << c) &
                maskBits(r.low_bits);
    r.widened = a.widened;
    int64_t hi = a.hi << c;
    if (hi <= kWordMax) {
        r.lo = a.lo << c;
        r.hi = hi;
    } else {
        r.lo = 0;
        r.hi = kWordMax;
    }
    return canon(r);
}

AbsVal
srlConst(const AbsVal &a, unsigned c)
{
    if (c == 0)
        return a;
    AbsVal r;
    r.lo = a.lo >> c;
    r.hi = a.hi >> c;
    r.low_bits =
        static_cast<uint8_t>(a.low_bits > c ? a.low_bits - c : 0);
    r.low_val = (a.low_val >> c) & maskBits(r.low_bits);
    r.widened = a.widened;
    return canon(r);
}

AbsVal
sraConst(const AbsVal &a, unsigned c)
{
    if (c == 0)
        return a;
    AbsVal r;
    // Low bits behave exactly like a logical shift; only the fill
    // bits differ, and those live above the known prefix.
    r.low_bits =
        static_cast<uint8_t>(a.low_bits > c ? a.low_bits - c : 0);
    r.low_val = (a.low_val >> c) & maskBits(r.low_bits);
    r.widened = a.widened;
    auto sr = a.signedRange();
    if (!sr) {
        r.lo = 0;
        r.hi = kWordMax;
        return canon(r);
    }
    int64_t lo = sr->first >> c;  // C++20: arithmetic on negatives
    int64_t hi = sr->second >> c;
    if (lo >= 0) {
        r.lo = lo;
        r.hi = hi;
    } else if (hi < 0) {
        r.lo = lo + kWordSpan;
        r.hi = hi + kWordSpan;
    } else {
        r.lo = 0; // signed interval straddles zero: the unsigned set
        r.hi = kWordMax; // splits into two ranges — give up
    }
    return canon(r);
}

} // namespace

AbsVal
AbsVal::constant(uint32_t v)
{
    AbsVal r;
    r.lo = v;
    r.hi = v;
    r.low_bits = 32;
    r.low_val = v;
    return r;
}

std::optional<uint32_t>
AbsVal::asConst() const
{
    if (lo == hi)
        return static_cast<uint32_t>(lo);
    return std::nullopt;
}

bool
AbsVal::contains(uint32_t v) const
{
    if (static_cast<int64_t>(v) < lo || static_cast<int64_t>(v) > hi)
        return false;
    return (v & maskBits(low_bits)) == low_val;
}

std::optional<std::pair<int64_t, int64_t>>
AbsVal::signedRange() const
{
    constexpr int64_t kSignBit = 1ll << 31;
    if (hi < kSignBit)
        return std::make_pair(lo, hi);
    if (lo >= kSignBit)
        return std::make_pair(lo - kWordSpan, hi - kWordSpan);
    return std::nullopt;
}

AbsVal
joinVals(const AbsVal &a, const AbsVal &b)
{
    AbsVal r;
    r.lo = std::min(a.lo, b.lo);
    r.hi = std::max(a.hi, b.hi);
    unsigned k = std::min(a.low_bits, b.low_bits);
    uint32_t diff = (a.low_val ^ b.low_val) & maskBits(k);
    if (diff)
        k = static_cast<unsigned>(std::countr_zero(diff));
    r.low_bits = static_cast<uint8_t>(k);
    r.low_val = a.low_val & maskBits(k);
    r.widened = a.widened || b.widened;
    return canon(r);
}

AbsVal
widenVals(const AbsVal &before, const AbsVal &after)
{
    AbsVal r = after;
    if (after.lo < before.lo) {
        r.lo = 0;
        r.widened = true;
    }
    if (after.hi > before.hi) {
        r.hi = kWordMax;
        r.widened = true;
    }
    return r;
}

AluRangeResult
evalAluRange(const AluPiece &piece, const AbsVal &rs, const AbsVal &src2,
             const AbsVal &rd_old, const AbsVal &lo)
{
    AluRangeResult out;
    out.writes_rd = isa::aluWritesRd(piece.op);
    out.writes_lo = isa::aluWritesLo(piece.op);
    out.rd = AbsVal::top();
    out.lo = AbsVal::top();

    // Fully constant inputs: the abstract result is the concrete one.
    bool all_const =
        (!isa::aluReadsRs(piece.op) || rs.asConst()) &&
        (!isa::aluReadsSrc2(piece.op) || src2.asConst()) &&
        (!isa::aluReadsRdOld(piece.op) || rd_old.asConst()) &&
        (!isa::aluReadsLo(piece.op) || lo.asConst());
    if (all_const) {
        isa::AluInputs in;
        in.rs = rs.asConst().value_or(0);
        in.src2 = src2.asConst().value_or(0);
        in.rd_old = rd_old.asConst().value_or(0);
        in.lo = lo.asConst().value_or(0);
        isa::AluOutputs o = isa::evalAlu(piece, in);
        if (o.writes_rd)
            out.rd = AbsVal::constant(o.rd);
        if (o.writes_lo)
            out.lo = AbsVal::constant(o.lo);
        return out;
    }

    std::optional<uint32_t> shift;
    if (auto c = src2.asConst())
        shift = *c & 31;
    bool in_widened = rs.widened || src2.widened;

    switch (piece.op) {
      case AluOp::ADD:
        out.rd = addVals(rs, src2);
        break;
      case AluOp::SUB:
        out.rd = subVals(rs, src2);
        break;
      case AluOp::RSUB:
        out.rd = subVals(src2, rs);
        break;
      case AluOp::AND:
        out.rd = andVals(rs, src2);
        break;
      case AluOp::OR:
        out.rd = orVals(rs, src2);
        break;
      case AluOp::XOR:
        out.rd = xorVals(rs, src2);
        break;
      case AluOp::NOT:
        out.rd = notVal(rs);
        break;
      case AluOp::SLL:
        out.rd = shift ? sllConst(rs, *shift)
                       : makeInterval(0, kWordMax, false);
        break;
      case AluOp::SRL:
        out.rd = shift ? srlConst(rs, *shift)
                       : makeInterval(0, rs.hi, rs.widened);
        break;
      case AluOp::SRA:
        out.rd = shift ? sraConst(rs, *shift)
                       : makeInterval(0, kWordMax, false);
        break;
      case AluOp::XC:
        out.rd = makeInterval(0, 0xff, in_widened);
        break;
      case AluOp::IC:
        out.rd = AbsVal::top();
        break;
      case AluOp::MOVI8:
        out.rd = AbsVal::constant(piece.imm8);
        break;
      case AluOp::SET:
        out.rd = makeInterval(0, 1, in_widened);
        break;
      case AluOp::MTLO:
        out.lo = rs;
        break;
      case AluOp::MFLO:
        out.rd = lo;
        break;
      case AluOp::MSTEP:
        out.rd = joinVals(rd_old, addVals(rd_old, rs));
        out.lo = srlConst(lo, 1);
        break;
      case AluOp::DSTEP:
        out.rd = AbsVal::top();
        out.lo = AbsVal::top();
        break;
    }
    return out;
}

// ------------------------------------------------------ machine state

namespace {

Flag
joinFlag(Flag a, Flag b)
{
    return a == b ? a : Flag::UNKNOWN;
}

/** State for code reachable from statically unknown control flow:
 *  nothing is known except the hardwired zero register. The enables
 *  stay UNKNOWN — an exception handler may run with anything. */
RegState
topState()
{
    RegState s;
    s.reachable = true;
    s.regs[isa::kZeroReg] = AbsVal::constant(0);
    return s;
}

/** The post-reset entry state: enables off (exception entry also
 *  clears them, so dispatch re-entry at the origin stays covered),
 *  everything else unknown. */
RegState
entryState()
{
    RegState s = topState();
    s.ovf_enable = Flag::NO;
    s.map_enable = Flag::NO;
    return s;
}

RegState
joinState(const RegState &a, const RegState &b)
{
    RegState r;
    r.reachable = true;
    for (int i = 0; i < isa::kNumRegs; ++i)
        r.regs[i] = joinVals(a.regs[i], b.regs[i]);
    r.lo = joinVals(a.lo, b.lo);
    r.ovf_enable = joinFlag(a.ovf_enable, b.ovf_enable);
    r.map_enable = joinFlag(a.map_enable, b.map_enable);
    r.seg_bits = joinVals(a.seg_bits, b.seg_bits);
    return r;
}

void
setReg(RegState *s, isa::Reg r, const AbsVal &v)
{
    if (r != isa::kZeroReg)
        s->regs[r] = v;
}

AbsVal
src2Val(const RegState &s, const isa::Src2 &src2)
{
    return src2.is_imm ? AbsVal::constant(src2.imm4) : s.regs[src2.reg];
}

/** Address of a local label, if the unit defines it. */
std::optional<AbsVal>
labelValue(const Cfg &cfg, const std::string &target)
{
    auto it = cfg.labels.find(target);
    if (it == cfg.labels.end() || it->second == kNoItem)
        return std::nullopt;
    return AbsVal::constant(cfg.unit->origin +
                            static_cast<uint32_t>(it->second));
}

/** Abstract execution of one item. */
RegState
transferItem(const Cfg &cfg, size_t i, RegState s)
{
    const Item &item = cfg.unit->items[i];
    if (item.is_data || !s.reachable)
        return s;
    const isa::Instruction &inst = item.inst;

    // Both pieces of a packed word read the incoming state; collect
    // the writes first so a (degenerate) shared destination joins.
    std::optional<std::pair<isa::Reg, AbsVal>> mem_write, alu_write;
    if (inst.mem && !inst.mem->is_store) {
        const MemPiece &m = *inst.mem;
        AbsVal v = AbsVal::top();
        if (m.mode == MemMode::LONG_IMM) {
            if (item.target.empty())
                v = AbsVal::constant(static_cast<uint32_t>(m.imm));
            else if (auto lv = labelValue(cfg, item.target))
                v = *lv;
        }
        mem_write = {m.rd, v};
    }
    if (inst.alu) {
        const AluPiece &a = *inst.alu;
        AluRangeResult r = evalAluRange(a, s.regs[a.rs],
                                        src2Val(s, a.src2),
                                        s.regs[a.rd], s.lo);
        if (r.writes_rd)
            alu_write = {a.rd, r.rd};
        if (r.writes_lo)
            s.lo = r.lo;
    }
    if (mem_write && alu_write && mem_write->first == alu_write->first) {
        setReg(&s, mem_write->first,
               joinVals(mem_write->second, alu_write->second));
    } else {
        if (mem_write)
            setReg(&s, mem_write->first, mem_write->second);
        if (alu_write)
            setReg(&s, alu_write->first, alu_write->second);
    }

    if (inst.jump && isa::jumpIsCall(inst.jump->kind)) {
        // The link register receives the resume address (past the
        // delay slots) — a known constant.
        uint32_t resume = cfg.unit->origin + static_cast<uint32_t>(i) +
                          1 + static_cast<uint32_t>(
                                  isa::jumpDelay(inst.jump->kind));
        setReg(&s, inst.jump->link, AbsVal::constant(resume));
    }

    if (inst.special) {
        const isa::SpecialPiece &sp = *inst.special;
        switch (sp.op) {
          case isa::SpecialOp::MTS:
            switch (sp.sreg) {
              case isa::SpecialReg::SURPRISE:
                if (auto c = s.regs[sp.reg].asConst()) {
                    s.ovf_enable = (*c >> 4) & 1 ? Flag::YES : Flag::NO;
                    s.map_enable = (*c >> 6) & 1 ? Flag::YES : Flag::NO;
                } else {
                    s.ovf_enable = Flag::UNKNOWN;
                    s.map_enable = Flag::UNKNOWN;
                }
                break;
              case isa::SpecialReg::SEG_BITS:
                s.seg_bits = s.regs[sp.reg];
                break;
              case isa::SpecialReg::LO:
                s.lo = s.regs[sp.reg];
                break;
              default:
                break;
            }
            break;
          case isa::SpecialOp::MFS:
            setReg(&s, sp.reg,
                   sp.sreg == isa::SpecialReg::LO ? s.lo
                                                  : AbsVal::top());
            break;
          case isa::SpecialOp::RFE:
            // Restores the previous enable bits: statically unknown.
            s.ovf_enable = Flag::UNKNOWN;
            s.map_enable = Flag::UNKNOWN;
            break;
          default:
            break;
        }
    }
    return s;
}

} // namespace

RangeAnalysis
analyzeValueRanges(const Cfg &cfg, const RangeOptions &options)
{
    size_t n = cfg.size();
    RangeAnalysis a;
    a.cfg = &cfg;
    a.in.assign(n, RegState{});
    if (n == 0)
        return a;

    std::vector<int> changes(n, 0);
    std::set<size_t> work; // ordered: deterministic iteration

    auto inject = [&](size_t i, const RegState &incoming) {
        RegState joined = a.in[i].reachable
                              ? joinState(a.in[i], incoming)
                              : incoming;
        if (a.in[i].reachable && joined == a.in[i])
            return;
        if (++changes[i] > options.widen_after && a.in[i].reachable) {
            auto widen = [&](const AbsVal &old, AbsVal *v) {
                AbsVal w = widenVals(old, *v);
                if (!(w == *v)) {
                    ++a.widenings;
                    *v = w;
                }
            };
            for (int r = 0; r < isa::kNumRegs; ++r)
                widen(a.in[i].regs[r], &joined.regs[r]);
            widen(a.in[i].lo, &joined.lo);
            widen(a.in[i].seg_bits, &joined.seg_bits);
            if (joined == a.in[i])
                return;
        }
        a.in[i] = joined;
        work.insert(i);
    };

    // The entry's seed covers every outside arrival there (reset and
    // exception dispatch both clear the enables), so its unknown_pred
    // does not get the weaker all-UNKNOWN seed that other externally
    // reachable items do.
    inject(0, entryState());
    for (size_t i = 1; i < n; ++i)
        if (cfg.nodes[i].unknown_pred)
            inject(i, topState());

    while (!work.empty()) {
        size_t i = *work.begin();
        work.erase(work.begin());
        ++a.iterations;
        RegState out = transferItem(cfg, i, a.in[i]);
        for (size_t succ : cfg.nodes[i].succs)
            inject(succ, out);
    }

    for (const RegState &s : a.in)
        if (s.reachable)
            ++a.reachable_items;
    return a;
}

AbsVal
memAddressRange(const MemPiece &piece, const std::string &target,
                const Cfg &cfg, const RegState &state)
{
    switch (piece.mode) {
      case MemMode::LONG_IMM:
        break; // no memory reference; fall through to the panic
      case MemMode::ABSOLUTE:
        if (!target.empty()) {
            if (auto lv = labelValue(cfg, target))
                return *lv;
            return AbsVal::top();
        }
        return AbsVal::constant(static_cast<uint32_t>(piece.imm));
      case MemMode::DISP:
        return addVals(state.regs[piece.base],
                       AbsVal::constant(static_cast<uint32_t>(piece.imm)));
      case MemMode::BASE_INDEX:
        return addVals(state.regs[piece.base], state.regs[piece.index]);
      case MemMode::BASE_SHIFT:
        return addVals(state.regs[piece.base],
                       srlConst(state.regs[piece.index], piece.shift));
    }
    support::panic("memAddressRange: LONG_IMM makes no reference");
}

} // namespace mips::verify
