/**
 * @file
 * Interval + known-low-bits abstract interpretation over the CFG.
 *
 * The memory-safety checker (verify/memsafety.h) needs to know, for
 * every reachable instruction, what a register *can* hold: the word
 * addresses a load or store can touch, whether an index register's
 * low bits are provably non-zero, whether an ADD can leave the signed
 * 32-bit range, and what the surprise-register enable bits are. This
 * module computes exactly that: a forward fixpoint over the
 * delay-slot-aware CFG (verify/cfg.h) assigning every item an
 * abstract machine state.
 *
 * The abstract value domain is deliberately small and word-oriented:
 *
 *  - an **interval** [lo, hi] over the *unsigned* 32-bit value (the
 *    machine is word addressed, so addresses are unsigned words);
 *    wrap-around is modeled exactly when the whole interval shifts by
 *    one 2^32 window and collapses to TOP otherwise;
 *  - **known low bits**: the value's low `low_bits` bits equal
 *    `low_val` (a power-of-two congruence). This is what BASE_SHIFT
 *    alignment reasoning needs, and it survives AND/OR/SLL/SRL/ADD
 *    exactly;
 *  - a **widened** taint: set when a bound was blown open by loop
 *    widening. Widened intervals stay sound for MUST findings (they
 *    only ever grow), but the checker refuses to base MAY findings on
 *    them — a widened bound is an analysis artifact, not evidence.
 *
 * Besides the 16 GPRs the state tracks the LO byte selector, the
 * overflow-trap and memory-mapping enable bits (three-valued, updated
 * by MTS of the surprise register with a provably constant source)
 * and the on-chip segmentation size register. The entry state is the
 * post-reset machine: enables off (exception entry also clears them,
 * so re-entry at the dispatch address stays covered), registers
 * unknown, r0 hardwired to zero.
 *
 * Transfer functions mirror isa::evalAlu piece by piece; when every
 * input is a known constant the abstract result *is* the concrete
 * evalAlu result (the conformance test sweeps exactly this identity).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "verify/cfg.h"

namespace mips::verify {

/** Largest unsigned 32-bit value, as the int64 the intervals use. */
constexpr int64_t kWordMax = 0xffffffffll;

/** One abstract 32-bit value. */
struct AbsVal
{
    int64_t lo = 0;        ///< unsigned interval lower bound
    int64_t hi = kWordMax; ///< unsigned interval upper bound
    uint8_t low_bits = 0;  ///< number of provably known low bits, 0..32
    uint32_t low_val = 0;  ///< their value (bits >= low_bits are zero)
    bool widened = false;  ///< a bound came from loop widening

    static AbsVal top() { return AbsVal{}; }
    static AbsVal constant(uint32_t v);

    bool isTop() const { return lo == 0 && hi == kWordMax && !low_bits; }

    /** The single value this must be, if fully known. */
    std::optional<uint32_t> asConst() const;

    /** True if the concrete value is inside the abstraction (interval
     *  and low-bits agreement both). */
    bool contains(uint32_t v) const;

    /**
     * The interval reinterpreted as signed 32-bit values, when that
     * is representable as one interval: nullopt when the unsigned
     * interval straddles the sign boundary (the signed set would be
     * two disjoint ranges — callers must stay silent).
     */
    std::optional<std::pair<int64_t, int64_t>> signedRange() const;

    bool operator==(const AbsVal &) const = default;
};

/** Least upper bound of two abstract values. */
AbsVal joinVals(const AbsVal &a, const AbsVal &b);

/** Widening: like join, but a bound that moved past `before`'s is
 *  blown open to the domain extreme and tainted as widened. */
AbsVal widenVals(const AbsVal &before, const AbsVal &after);

/** Abstract counterpart of isa::AluOutputs. */
struct AluRangeResult
{
    AbsVal rd;
    AbsVal lo;
    bool writes_rd = false;
    bool writes_lo = false;
};

/**
 * Abstract transfer of one ALU piece: the sound image of
 * isa::evalAlu over the inputs. Exact (a constant) whenever every
 * input the op reads is constant.
 */
AluRangeResult evalAluRange(const isa::AluPiece &piece, const AbsVal &rs,
                            const AbsVal &src2, const AbsVal &rd_old,
                            const AbsVal &lo);

/** Three-valued surprise-register enable bit. */
enum class Flag : uint8_t
{
    NO = 0,
    YES = 1,
    UNKNOWN = 2,
};

/** Abstract machine state before one item executes. */
struct RegState
{
    AbsVal regs[isa::kNumRegs];
    AbsVal lo;                       ///< LO byte-selector register
    Flag ovf_enable = Flag::UNKNOWN; ///< surprise bit 4
    Flag map_enable = Flag::UNKNOWN; ///< surprise bit 6
    AbsVal seg_bits;                 ///< on-chip segmentation size
    bool reachable = false;

    bool operator==(const RegState &) const = default;
};

/** Fixpoint knobs. */
struct RangeOptions
{
    /** Joins into one item that may change its state before the
     *  solver starts widening unstable bounds there. */
    int widen_after = 4;

    bool operator==(const RangeOptions &) const = default;
};

/** The fixpoint: one in-state per item, plus solver statistics. */
struct RangeAnalysis
{
    const Cfg *cfg = nullptr;
    std::vector<RegState> in; ///< state *before* item i executes
    size_t reachable_items = 0;
    size_t widenings = 0; ///< bounds blown open (metric fodder)
    size_t iterations = 0; ///< item transfers evaluated
};

/** Run the forward fixpoint over a built CFG. */
RangeAnalysis analyzeValueRanges(const Cfg &cfg,
                                 const RangeOptions &options = {});

/**
 * Abstract effective word address of a memory-referencing piece in
 * `state`, resolving a symbolic operand through the CFG labels (a
 * `la`/absolute reference to a local label is origin + item index).
 * Must not be called for LONG_IMM.
 */
AbsVal memAddressRange(const isa::MemPiece &piece,
                       const std::string &target, const Cfg &cfg,
                       const RegState &state);

} // namespace mips::verify
