#include "verify/verify.h"

#include "obs/catalog.h"
#include "verify/interproc.h"
#include "verify/passes.h"

namespace mips::verify {

namespace {

// The obs catalog mirrors the diagnostic-code list as strings so it
// can stay a leaf library; hold the two in lockstep here.
static_assert(static_cast<size_t>(kNumCodes) == obs::kVerifyDiagCodes,
              "new Code: extend obs::kDiagCodeNames and docs/METRICS.md");

VerifyReport
finish(DiagnosticEngine &engine)
{
    engine.sort();
    VerifyReport report;
    report.errors = engine.errorCount();
    report.warnings = engine.warningCount();
    report.notes = engine.noteCount();
    report.diagnostics = engine.diagnostics();

    // Every verification run — CLI, pipeline stage, or test oracle —
    // reports through the verify.* metrics.
    obs::VerifyMetrics &m = obs::verifyMetrics();
    m.units->add();
    if (report.clean())
        m.clean_units->add();
    for (const Diagnostic &d : report.diagnostics)
        m.diag[static_cast<size_t>(d.code)]->add();
    return report;
}

void
runPasses(const assembler::Unit &unit, const VerifyOptions &options,
          DiagnosticEngine &engine)
{
    Cfg cfg = buildCfg(unit, &engine);
    checkHazards(cfg, &engine);
    if (options.lint)
        checkLints(cfg, options, &engine);
    if (options.interproc) {
        CallGraph graph = buildCallGraph(cfg);
        InterprocOptions io;
        io.callee_saved = options.callee_saved;
        io.assume_initialized = options.assume_initialized;
        checkCallingConventions(graph, io, &engine);
    }
}

} // namespace

size_t
VerifyReport::countOf(Code code) const
{
    size_t n = 0;
    for (const Diagnostic &d : diagnostics) {
        if (d.code == code)
            ++n;
    }
    return n;
}

VerifyReport
verifyUnit(const assembler::Unit &unit, const VerifyOptions &options)
{
    DiagnosticEngine engine(&unit);
    runPasses(unit, options, engine);
    return finish(engine);
}

VerifyReport
verifyReorganization(const assembler::Unit &input,
                     const assembler::Unit &output,
                     const VerifyOptions &options)
{
    DiagnosticEngine engine(&output);
    runPasses(output, options, engine);
    checkNoreorderIntegrity(input, output, &engine);
    return finish(engine);
}

void
promoteNotesToErrors(VerifyReport *report)
{
    for (Diagnostic &d : report->diagnostics) {
        if (d.severity == Severity::NOTE) {
            d.severity = Severity::ERROR;
            --report->notes;
            ++report->errors;
        }
    }
}

std::string
reportText(const VerifyReport &report, const assembler::Unit &unit,
           const std::string &name)
{
    return renderText(report.diagnostics, &unit, name);
}

std::string
reportJson(const VerifyReport &report, const std::string &name,
           double elapsed_ms)
{
    return renderJson(report.diagnostics, name, elapsed_ms);
}

} // namespace mips::verify
