/**
 * @file
 * mipsverify: static verification of pipeline-targeted code.
 *
 * The paper's machine has *no* interlock hardware (Section 4.2.1):
 * "the burden of correctness falls entirely on the software", and a
 * reorganizer bug silently computes wrong answers instead of faulting.
 * This module is the trust layer for that contract. Given an assembled
 * Unit that is *meant to run on the pipeline* (reorganizer output, or
 * hand-scheduled code), it builds the delay-slot-aware CFG, runs the
 * dataflow framework, and checks every clause of the software
 * interlock contract statically:
 *
 *  - **HZ001** load-delay violations — a register read in the delay
 *    slot of the load that writes it (the hardware serves the stale
 *    value);
 *  - **HZ002/HZ003** transfer-in-shadow violations — a branch or jump
 *    in the delay slot(s) of another transfer (architecturally
 *    undefined; the simulator stops with an error);
 *  - **HZ004** packed-word violations — dependent ALU and memory
 *    pieces sharing one word;
 *  - **HZ005** `.noreorder` integrity — regions the front end fenced
 *    off must survive reorganization verbatim;
 *  - **HZ006** unverifiable load delays escaping into unknown code;
 *
 * plus lint findings (LT001 possibly-uninitialized read, LT002 dead
 * store, LT003 unreachable code) and structural checks (VF001 invalid
 * word, VF002 undefined label).
 *
 * Inside `.noreorder` regions, load-delay and packed-dependence
 * findings are *notes*, not errors: the stale-value semantics are
 * well defined and the front end may exploit them deliberately.
 * Transfer-in-shadow findings stay errors everywhere — no software
 * contract makes those defined.
 *
 * Used three ways: as a library (verifyUnit / verifyReorganization),
 * as the `mipsverify` CLI, and as an invariant oracle in the test
 * suite, where every reorganized unit must verify clean and injected
 * hazard mutations must be caught.
 */
#pragma once

#include <string>

#include "asm/unit.h"
#include "verify/diagnostics.h"

namespace mips::verify {

/** Knobs for one verification run. */
struct VerifyOptions
{
    /** Run the LT* lint passes (hazard checks always run). */
    bool lint = true;
    /**
     * Run the interprocedural passes: call-graph construction plus
     * the CC001-CC004 calling-convention checks and LT004 dead-
     * function detection (see verify/interproc.h).
     */
    bool interproc = true;
    /**
     * GPR mask assumed written before entry. Defaults to the ABI
     * registers the runtime contract guarantees: the global pointer,
     * stack pointer, and link register.
     */
    uint16_t assume_initialized =
        (1u << 13) | (1u << 14) | (1u << 15);
    /**
     * Registers the calling convention declares callee-saved (CC001).
     * The in-tree compiler uses a caller-save convention, so the
     * default checks nothing.
     */
    uint16_t callee_saved = 0;
};

/** Outcome of a verification run. */
struct VerifyReport
{
    std::vector<Diagnostic> diagnostics;
    size_t errors = 0;
    size_t warnings = 0;
    size_t notes = 0;

    /** No contract violations (warnings and notes allowed). */
    bool clean() const { return errors == 0; }

    /** Number of diagnostics carrying `code`. */
    size_t countOf(Code code) const;
};

/**
 * Statically verify a pipeline-targeted unit against the software
 * interlock contract. The unit may still have symbolic targets
 * (pre-link) or numeric ones (post-link): both resolve.
 */
VerifyReport verifyUnit(const assembler::Unit &unit,
                        const VerifyOptions &options = VerifyOptions{});

/**
 * Verify a reorganization end to end: the output unit must satisfy
 * the interlock contract (verifyUnit) *and* every `.noreorder` region
 * of `input` must appear in `output` verbatim and in order (HZ005).
 */
VerifyReport
verifyReorganization(const assembler::Unit &input,
                     const assembler::Unit &output,
                     const VerifyOptions &options = VerifyOptions{});

/**
 * Strict mode: upgrade every NOTE to an ERROR in place (used by
 * `mipsverify --strict`, where e.g. a TV090 "not proven" note must
 * fail the gate instead of merely warning).
 */
void promoteNotesToErrors(VerifyReport *report);

/** Render a report as human-readable text (one line per finding). */
std::string reportText(const VerifyReport &report,
                       const assembler::Unit &unit,
                       const std::string &name);

/**
 * Render a report as a machine-readable JSON object. A non-negative
 * `elapsed_ms` is included as per-unit wall time.
 */
std::string reportJson(const VerifyReport &report,
                       const std::string &name,
                       double elapsed_ms = -1.0);

} // namespace mips::verify
