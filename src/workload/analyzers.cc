#include "workload/analyzers.h"

#include <algorithm>
#include <cstdlib>

#include "plc/driver.h"
#include "plc/parser.h"
#include "sim/machine.h"
#include "support/logging.h"
#include "workload/corpus.h"

namespace mips::workload {

using plc::BaseType;
using plc::Expr;
using plc::ProgramAst;
using plc::Stmt;

namespace {

// ------------------------------------------------ Table 1: constants

void
bucketConstant(int64_t value, ConstantDist *out)
{
    uint64_t mag = static_cast<uint64_t>(std::llabs(value));
    const char *bucket = mag == 0 ? "0"
        : mag == 1 ? "1"
        : mag == 2 ? "2"
        : mag <= 15 ? "3-15"
        : mag <= 255 ? "16-255"
        : ">255";
    out->dist.add(bucket);
}

void
constantsInExpr(const Expr &expr, ConstantDist *out)
{
    switch (expr.kind) {
      case Expr::Kind::INT_LIT:
        bucketConstant(expr.int_value, out);
        break;
      case Expr::Kind::CHAR_LIT:
        bucketConstant(static_cast<unsigned char>(expr.char_value),
                       out);
        break;
      default:
        break;
    }
    if (expr.lhs)
        constantsInExpr(*expr.lhs, out);
    if (expr.rhs)
        constantsInExpr(*expr.rhs, out);
    for (const auto &arg : expr.args)
        constantsInExpr(*arg, out);
}

void
constantsInStmt(const Stmt &stmt, ConstantDist *out)
{
    for (const Expr *e : {stmt.index.get(), stmt.value.get(),
                          stmt.cond.get(), stmt.from.get(),
                          stmt.to.get()}) {
        if (e)
            constantsInExpr(*e, out);
    }
    for (const auto &arg : stmt.args)
        constantsInExpr(*arg, out);
    for (const auto &inner : stmt.body)
        constantsInStmt(*inner, out);
    for (const auto &inner : stmt.else_body)
        constantsInStmt(*inner, out);
}

// ------------------------------------ Table 4: boolean expressions

/** Count relational and boolean operators inside one expression. */
uint64_t
boolOperators(const Expr &expr)
{
    uint64_t count = 0;
    if (expr.kind == Expr::Kind::BINOP) {
        switch (expr.op) {
          case plc::Tok::EQ: case plc::Tok::NE: case plc::Tok::LT:
          case plc::Tok::LE: case plc::Tok::GT: case plc::Tok::GE:
          case plc::Tok::KW_AND: case plc::Tok::KW_OR:
            ++count;
            break;
          default:
            break;
        }
    }
    if (expr.kind == Expr::Kind::UNOP && expr.op == plc::Tok::KW_NOT)
        ++count;
    if (expr.lhs)
        count += boolOperators(*expr.lhs);
    if (expr.rhs)
        count += boolOperators(*expr.rhs);
    for (const auto &arg : expr.args)
        count += boolOperators(*arg);
    return count;
}

void
boolExprsInStmt(const Stmt &stmt, BoolExprShape *out)
{
    // A bare boolean variable used as a condition still costs one
    // comparison on every machine (test against zero), so each
    // expression contributes at least one operator.
    if (stmt.cond) {
        ++out->expressions;
        ++out->ending_jump;
        out->operators += std::max<uint64_t>(1, boolOperators(*stmt.cond));
    }
    if (stmt.kind == Stmt::Kind::ASSIGN && stmt.value &&
        stmt.value->type == BaseType::BOOLEAN) {
        ++out->expressions;
        ++out->ending_store;
        out->operators +=
            std::max<uint64_t>(1, boolOperators(*stmt.value));
    }
    for (const auto &inner : stmt.body)
        boolExprsInStmt(*inner, out);
    for (const auto &inner : stmt.else_body)
        boolExprsInStmt(*inner, out);
}

} // namespace

void
collectConstants(const ProgramAst &program, ConstantDist *out)
{
    for (const plc::ConstDecl &decl : program.consts)
        bucketConstant(decl.value, out);
    for (const plc::Routine &routine : program.routines) {
        for (const plc::ConstDecl &decl : routine.consts)
            bucketConstant(decl.value, out);
        for (const auto &stmt : routine.body)
            constantsInStmt(*stmt, out);
    }
    for (const auto &stmt : program.body)
        constantsInStmt(*stmt, out);
}

void
collectBoolExprs(const ProgramAst &program, BoolExprShape *out)
{
    for (const plc::Routine &routine : program.routines)
        for (const auto &stmt : routine.body)
            boolExprsInStmt(*stmt, out);
    for (const auto &stmt : program.body)
        boolExprsInStmt(*stmt, out);
}

void
collectCcSavings(const assembler::Unit &unit, CcSavings *out)
{
    using isa::AluOp;
    const auto &items = unit.items;
    for (size_t i = 0; i < items.size(); ++i) {
        const assembler::Item &item = items[i];
        if (item.is_data)
            continue;

        // Identify a comparison and its first operand register.
        bool is_compare = false;
        isa::Reg compared = isa::kZeroReg;
        bool against_zero = false;
        if (item.inst.branch) {
            const isa::BranchPiece &b = *item.inst.branch;
            if (b.cond != isa::Cond::ALWAYS &&
                b.cond != isa::Cond::NEVER) {
                is_compare = true;
                compared = b.rs;
                against_zero = (b.src2.is_imm && b.src2.imm4 == 0) ||
                               (!b.src2.is_imm &&
                                b.src2.reg == isa::kZeroReg);
            }
        } else if (item.inst.alu && item.inst.alu->op == AluOp::SET) {
            const isa::AluPiece &a = *item.inst.alu;
            is_compare = true;
            compared = a.rs;
            against_zero = (a.src2.is_imm && a.src2.imm4 == 0) ||
                           (!a.src2.is_imm &&
                            a.src2.reg == isa::kZeroReg);
        }
        if (!is_compare)
            continue;
        ++out->compares;
        if (!against_zero || i == 0)
            continue;

        // Did the immediately preceding instruction produce the value?
        const assembler::Item &prev = items[i - 1];
        if (prev.is_data)
            continue;
        isa::RegUse use = isa::regUse(prev.inst);
        if (!use.writesGpr(compared))
            continue;

        bool producer_is_op = false;
        bool producer_is_move = false;
        if (prev.inst.alu) {
            switch (prev.inst.alu->op) {
              case AluOp::ADD:
                // `add rs, #0, rd` is the move idiom.
                producer_is_move = prev.inst.alu->src2.is_imm &&
                                   prev.inst.alu->src2.imm4 == 0;
                producer_is_op = !producer_is_move;
                break;
              case AluOp::MOVI8:
                producer_is_move = true;
                break;
              case AluOp::SET:
                producer_is_op = true;
                break;
              default:
                producer_is_op = true;
                break;
            }
        }
        if (prev.inst.mem && !prev.inst.mem->is_store)
            producer_is_move = true; // a load "moves" the value

        if (producer_is_op) {
            ++out->saved_by_ops;
            ++out->saved_with_moves;
        } else if (producer_is_move) {
            ++out->saved_with_moves;
            ++out->moves_for_cc;
        }
    }
}

void
accumulateRefs(const assembler::Unit &final_unit, uint32_t origin,
               const sim::Cpu &cpu, RefPattern *out)
{
    const auto &items = final_unit.items;
    for (size_t i = 0; i < items.size(); ++i) {
        const assembler::Item &item = items[i];
        if (item.ref_size == 0)
            continue;
        uint64_t n = cpu.execCount(origin + static_cast<uint32_t>(i));
        if (n == 0)
            continue;
        bool is_store = item.inst.mem && item.inst.mem->is_store;
        bool is_byte = item.ref_size == 8;
        if (is_store) {
            (is_byte ? out->stores8 : out->stores32) += n;
            if (item.ref_is_char)
                (is_byte ? out->char_stores8 : out->char_stores32) += n;
        } else {
            (is_byte ? out->loads8 : out->loads32) += n;
            if (item.ref_is_char)
                (is_byte ? out->char_loads8 : out->char_loads32) += n;
        }
    }
}

support::Result<ProfileResult>
profileProgram(const std::string &source, plc::Layout layout)
{
    plc::CompileOptions copts;
    copts.layout = layout;
    auto exe = plc::buildExecutable(source, copts);
    if (!exe.ok())
        return exe.error();

    sim::Machine machine;
    machine.load(exe.value().program);
    machine.cpu().enableProfiling(true);
    sim::StopReason reason = machine.cpu().run(200'000'000);
    if (reason != sim::StopReason::HALT) {
        return support::makeError("program did not halt: " +
                                  machine.cpu().errorMessage());
    }

    ProfileResult result;
    result.cycles = machine.cpu().stats().cycles;
    result.free_data_cycles = machine.cpu().stats().free_data_cycles;
    result.console = machine.memory().consoleOutput();

    accumulateRefs(exe.value().final_unit, exe.value().program.origin,
                   machine.cpu(), &result.refs);
    return result;
}

support::Result<ProfileResult>
profileCorpus(plc::Layout layout)
{
    ProfileResult merged;
    for (const CorpusProgram &program : corpus()) {
        auto result = profileProgram(program.source, layout);
        if (!result.ok()) {
            return support::makeError(std::string(program.name) + ": " +
                                      result.error().str());
        }
        merged.refs.merge(result.value().refs);
        merged.cycles += result.value().cycles;
        merged.free_data_cycles += result.value().free_data_cycles;
    }
    return merged;
}

std::vector<ProgramAst>
parseCorpus(plc::Layout layout)
{
    std::vector<ProgramAst> out;
    for (const CorpusProgram &program : corpus()) {
        auto ast = plc::parseProgram(program.source);
        if (!ast.ok()) {
            support::panic("corpus program %s fails to parse: %s",
                           program.name, ast.error().str().c_str());
        }
        out.push_back(ast.take());
        auto sema = plc::analyze(out.back(), layout);
        if (!sema.ok()) {
            support::panic("corpus program %s fails analysis: %s",
                           program.name, sema.error().str().c_str());
        }
    }
    return out;
}

} // namespace mips::workload
