/**
 * @file
 * Static and dynamic workload analyzers backing Tables 1, 3, 4, 7, 8
 * and the free-memory-cycle study.
 */
#pragma once

#include <string>
#include <vector>

#include "asm/unit.h"
#include "plc/ast.h"
#include "plc/sema.h"
#include "support/stats.h"

namespace mips::sim {
class Cpu;
}

namespace mips::workload {

// ------------------------------------------------ Table 1: constants

/** Constant-magnitude distribution (paper buckets). */
struct ConstantDist
{
    support::BucketDist dist{{"0", "1", "2", "3-15", "16-255", ">255"}};
};

/**
 * Collect every integer and character constant appearing in the
 * program (literals in expressions and statements plus declared
 * constants), bucketed by absolute value as in Table 1. Character
 * constants land in the 16-255 bucket, which is exactly the paper's
 * observation about that bucket's population.
 */
void collectConstants(const plc::ProgramAst &program, ConstantDist *out);

// ------------------------------------ Table 4: boolean expressions

/** Shape statistics for boolean expressions. */
struct BoolExprShape
{
    uint64_t expressions = 0;
    uint64_t operators = 0;   ///< relational + and/or/not operators
    uint64_t ending_jump = 0; ///< conditions of if/while/repeat
    uint64_t ending_store = 0;///< boolean-valued assignments

    double
    meanOperators() const
    {
        return expressions
            ? static_cast<double>(operators) /
              static_cast<double>(expressions) : 0.0;
    }

    double
    fracJump() const
    {
        uint64_t total = ending_jump + ending_store;
        return total ? static_cast<double>(ending_jump) /
                       static_cast<double>(total) : 0.0;
    }
};

/**
 * Walk the AST collecting top-level boolean expressions: statement
 * conditions count as ending in jumps, boolean-typed assignment
 * sources as ending in stores. Operators counted are relational
 * comparisons plus and/or/not, so a bare comparison is one operator
 * (the paper's mean of 1.66 is over the same population).
 * The AST must already be analyzed (types resolved).
 */
void collectBoolExprs(const plc::ProgramAst &program, BoolExprShape *out);

// -------------------------------------- Table 3: condition-code savings

/** Counts for the compares-saved-by-condition-codes analysis. */
struct CcSavings
{
    uint64_t compares = 0;          ///< compare-and-branch + set
    uint64_t saved_by_ops = 0;      ///< zero-compare of a value the
                                    ///< previous ALU op just computed
    uint64_t saved_with_moves = 0;  ///< additionally counting values
                                    ///< just moved or loaded
    uint64_t moves_for_cc = 0;      ///< loads/moves feeding only such
                                    ///< a zero-compare

    double
    fracSavedByOps() const
    {
        return compares ? static_cast<double>(saved_by_ops) /
                          static_cast<double>(compares) : 0.0;
    }

    double
    fracSavedWithMoves() const
    {
        return compares ? static_cast<double>(saved_with_moves) /
                          static_cast<double>(compares) : 0.0;
    }
};

/**
 * Scan compiled legal code for comparisons a condition-code machine
 * would get "for free": a compare of a register against zero placed
 * immediately after the instruction computing that register. When the
 * producer is an arithmetic/logical operation, a CC machine that sets
 * codes on operations saves the compare; when it is a move or load,
 * only a machine that also sets codes on moves (the VAX) saves it.
 */
void collectCcSavings(const assembler::Unit &unit, CcSavings *out);

// ------------------------------ Tables 7/8: data reference patterns

/** Dynamic logical data-reference counts by size and kind. */
struct RefPattern
{
    uint64_t loads8 = 0, loads32 = 0;
    uint64_t stores8 = 0, stores32 = 0;
    uint64_t char_loads8 = 0, char_loads32 = 0;
    uint64_t char_stores8 = 0, char_stores32 = 0;

    uint64_t
    total() const
    {
        return loads8 + loads32 + stores8 + stores32;
    }

    uint64_t
    charTotal() const
    {
        return char_loads8 + char_loads32 + char_stores8 +
               char_stores32;
    }

    void
    merge(const RefPattern &other)
    {
        loads8 += other.loads8;
        loads32 += other.loads32;
        stores8 += other.stores8;
        stores32 += other.stores32;
        char_loads8 += other.char_loads8;
        char_loads32 += other.char_loads32;
        char_stores8 += other.char_stores8;
        char_stores32 += other.char_stores32;
    }
};

/** Result of executing one program with reference profiling. */
struct ProfileResult
{
    RefPattern refs;
    uint64_t cycles = 0;          ///< issued words, incl. exception code
    uint64_t free_data_cycles = 0;
    std::string console;

    /** Fraction of data bandwidth left idle (mirrors
     *  sim::CpuStats::freeBandwidth over the merged counts). */
    double
    freeBandwidth() const
    {
        return cycles ? static_cast<double>(free_data_cycles) /
                        static_cast<double>(cycles) : 0.0;
    }
};

/**
 * Accumulate logical reference counts into `out` from the compiler's
 * per-item annotations in `final_unit`, weighted by the profiling
 * CPU's per-word execution counts (the unit must have been linked at
 * `origin` and run with profiling enabled). Shared by profileProgram
 * and the pipeline Simulate stage.
 */
void accumulateRefs(const assembler::Unit &final_unit, uint32_t origin,
                    const sim::Cpu &cpu, RefPattern *out);

/**
 * Compile `source` under `layout`, reorganize, run on the pipeline
 * machine with profiling, and accumulate logical reference counts
 * from the compiler's annotations weighted by execution counts.
 */
support::Result<ProfileResult> profileProgram(const std::string &source,
                                              plc::Layout layout);

/** Run the whole corpus and merge reference patterns. */
support::Result<ProfileResult> profileCorpus(plc::Layout layout);

// ------------------------------------------------- Corpus conveniences

/** Parse + analyze every corpus program (panics on corpus bugs). */
std::vector<plc::ProgramAst> parseCorpus(plc::Layout layout);

} // namespace mips::workload
