#include "workload/corpus.h"

namespace mips::workload {

namespace {

// ------------------------------------------------------------ Corpus

/** Lexical scanner over synthesized source text (compiler-flavoured,
 *  heavy character handling over a packed buffer). */
const char *const kTokenizer = R"(
program tokenizer;
const srclen = 96;
var src: array [0..95] of char;
    i, n, idents, numbers, spaces, others: integer;
    c: char;
    inident, innum: boolean;
function isletter(ch: char): boolean;
begin
  isletter := (ch >= 'a') and (ch <= 'z');
end;
function isdigit(ch: char): boolean;
begin
  isdigit := (ch >= '0') and (ch <= '9');
end;
begin
  { synthesize a source-like text: words, numbers, punctuation }
  for i := 0 to srclen - 1 do begin
    n := i mod 8;
    if n < 4 then src[i] := chr(ord('a') + (i mod 26))
    else if n < 6 then src[i] := chr(ord('0') + (i mod 10))
    else if n = 6 then src[i] := ' '
    else src[i] := ';';
  end;
  idents := 0; numbers := 0; spaces := 0; others := 0;
  inident := false; innum := false;
  for i := 0 to srclen - 1 do begin
    c := src[i];
    if isletter(c) then begin
      if not inident then idents := idents + 1;
      inident := true;
    end else if isdigit(c) then begin
      if (not innum) and (not inident) then numbers := numbers + 1;
      innum := true;
    end else begin
      inident := false; innum := false;
      if c = ' ' then spaces := spaces + 1
      else others := others + 1;
    end;
  end;
  writeint(idents); writechar(' ');
  writeint(numbers); writechar(' ');
  writeint(spaces); writechar(' ');
  writeint(others);
end.
)";

/** Open-addressed symbol table (compiler-flavoured). */
const char *const kSymtab = R"(
program symtab;
const nslots = 32; names = 48;
var table: array [0..31] of integer;
    probes, stored, found, i, k: integer;
function hash(key: integer): integer;
begin
  hash := (key * 7 + 3) mod nslots;
end;
procedure insert(key: integer);
var slot: integer; done: boolean;
begin
  slot := hash(key);
  done := false;
  while not done do begin
    probes := probes + 1;
    if table[slot] = 0 then begin
      table[slot] := key; stored := stored + 1; done := true;
    end else if table[slot] = key then begin
      found := found + 1; done := true;
    end else begin
      slot := slot + 1;
      if slot >= nslots then slot := 0;
    end;
  end;
end;
begin
  for i := 0 to nslots - 1 do table[i] := 0;
  probes := 0; stored := 0; found := 0;
  for i := 1 to names do insert((i * 13) mod 29 + 1);
  writeint(stored); writechar(' '); writeint(found);
end.
)";

/** Word counting and case conversion over character lines. */
const char *const kTextFormat = R"(
program textformat;
const len = 80;
var line: array [0..79] of char;
    outbuf: packed array [0..79] of char;
    i, j, words: integer;
    c: char;
begin
  for i := 0 to len - 1 do begin
    if (i mod 5) = 4 then line[i] := ' '
    else line[i] := chr(ord('a') + (i mod 7));
  end;
  words := 0; j := 0;
  for i := 0 to len - 1 do begin
    c := line[i];
    if c = ' ' then words := words + 1
    else c := chr(ord(c) - 32);
    outbuf[j] := c;
    j := j + 1;
  end;
  writeint(words); writechar(outbuf[0]); writechar(outbuf[1]);
end.
)";

/** Token-stream expression evaluator (interpreter-flavoured). */
const char *const kCalculator = R"(
program calculator;
const ntoks = 24;
var vals: array [0..23] of integer;
    ops: array [0..23] of char;
    acc, i: integer;
    c: char;
begin
  for i := 0 to ntoks - 1 do begin
    vals[i] := (i * 3) mod 7 + 1;
    if (i mod 3) = 0 then ops[i] := '+'
    else if (i mod 3) = 1 then ops[i] := '-'
    else ops[i] := '*';
  end;
  acc := 0;
  for i := 0 to ntoks - 1 do begin
    c := ops[i];
    if c = '+' then acc := acc + vals[i]
    else if c = '-' then acc := acc - vals[i]
    else acc := acc + vals[i] * 2;
  end;
  writeint(acc);
end.
)";

/** Netlist statistics (VLSI-design-aid-flavoured). */
const char *const kGateCount = R"(
program gatecount;
const ngates = 60;
var kind: array [0..59] of integer;
    fanin: array [0..59] of integer;
    ands, ors, nots, maxfan, total, i: integer;
begin
  for i := 0 to ngates - 1 do begin
    kind[i] := i mod 3;
    fanin[i] := (i * 5) mod 4 + 1;
  end;
  ands := 0; ors := 0; nots := 0; maxfan := 0; total := 0;
  for i := 0 to ngates - 1 do begin
    if kind[i] = 0 then ands := ands + 1
    else if kind[i] = 1 then ors := ors + 1
    else nots := nots + 1;
    total := total + fanin[i];
    if fanin[i] > maxfan then maxfan := fanin[i];
  end;
  writeint(ands); writechar(' '); writeint(ors); writechar(' ');
  writeint(nots); writechar(' '); writeint(maxfan); writechar(' ');
  writeint(total);
end.
)";

/** Grid wave-propagation router (VLSI-design-aid-flavoured). */
const char *const kRouter = R"(
program router;
const w = 12; cells = 144;
var grid: array [0..143] of integer;
    i, v: integer;
    changed: boolean;
begin
  for i := 0 to cells - 1 do grid[i] := 0;
  for i := 2 to 9 do grid[5 * w + i] := -1;
  grid[0] := 1;
  changed := true;
  while changed do begin
    changed := false;
    for i := 0 to cells - 1 do begin
      v := grid[i];
      if v > 0 then begin
        if (i mod w) > 0 then
          if grid[i - 1] = 0 then begin
            grid[i - 1] := v + 1; changed := true;
          end;
        if (i mod w) < w - 1 then
          if grid[i + 1] = 0 then begin
            grid[i + 1] := v + 1; changed := true;
          end;
        if i >= w then
          if grid[i - w] = 0 then begin
            grid[i - w] := v + 1; changed := true;
          end;
        if i < cells - w then
          if grid[i + w] = 0 then begin
            grid[i + w] := v + 1; changed := true;
          end;
      end;
    end;
  end;
  writeint(grid[cells - 1]);
end.
)";

/** Keyed insertion sort carrying a character payload. */
const char *const kSorter = R"(
program sorter;
const n = 40;
var a: array [0..39] of integer;
    key: packed array [0..39] of char;
    i, j, t: integer;
    c: char;
begin
  for i := 0 to n - 1 do begin
    a[i] := (i * 37) mod 41;
    key[i] := chr(ord('a') + (a[i] mod 26));
  end;
  for i := 1 to n - 1 do begin
    t := a[i]; c := key[i]; j := i - 1;
    while (j >= 0) and (a[j] > t) do begin
      a[j + 1] := a[j];
      key[j + 1] := key[j];
      j := j - 1;
    end;
    a[j + 1] := t;
    key[j + 1] := c;
  end;
  writeint(a[0]); writechar(key[0]);
  writeint(a[39]); writechar(key[39]);
end.
)";

/** Fletcher-style checksum over a packed character buffer. */
const char *const kChecksum = R"(
program checksum;
const len = 64;
var buf: packed array [0..63] of char;
    i, s1, s2: integer;
begin
  for i := 0 to len - 1 do
    buf[i] := chr(32 + ((i * 11) mod 90));
  s1 := 0; s2 := 0;
  for i := 0 to len - 1 do begin
    s1 := (s1 + ord(buf[i])) mod 255;
    s2 := (s2 + s1) mod 255;
  end;
  writeint(s1); writechar(':'); writeint(s2);
end.
)";

// ------------------------------------------- Dispatch-heavy programs

/**
 * Stack-machine bytecode interpreter computing 5! — the classic
 * fetch/dispatch loop whose inner CASE lowers to a jump table.
 * Opcodes: 0 halt, 1 push imm, 2 add, 3 sub, 4 mul, 5 load global,
 * 6 store global, 7 jnz, 8 print, 9 dup.
 */
const char *const kBytecode = R"(
program bytecode;
const ncode = 17;
var code: array [0..16] of integer;
    arg: array [0..16] of integer;
    stack: array [0..7] of integer;
    globals: array [0..3] of integer;
    pc, sp, op, a: integer;
    running: boolean;
procedure emit(at, o, v: integer);
begin
  code[at] := o; arg[at] := v;
end;
begin
  { g0 := 1; g1 := 5; repeat g0 := g0*g1; g1 := g1-1 until g1 = 0;
    print g0 }
  emit(0, 1, 1);  emit(1, 6, 0);
  emit(2, 1, 5);  emit(3, 6, 1);
  emit(4, 5, 0);  emit(5, 5, 1);  emit(6, 4, 0);  emit(7, 6, 0);
  emit(8, 5, 1);  emit(9, 1, 1);  emit(10, 3, 0); emit(11, 6, 1);
  emit(12, 5, 1); emit(13, 7, 4);
  emit(14, 5, 0); emit(15, 8, 0);
  emit(16, 0, 0);
  pc := 0; sp := 0; running := true;
  while running do begin
    op := code[pc]; a := arg[pc]; pc := pc + 1;
    case op of
      0: running := false;
      1: begin stack[sp] := a; sp := sp + 1; end;
      2: begin sp := sp - 1;
           stack[sp - 1] := stack[sp - 1] + stack[sp]; end;
      3: begin sp := sp - 1;
           stack[sp - 1] := stack[sp - 1] - stack[sp]; end;
      4: begin sp := sp - 1;
           stack[sp - 1] := stack[sp - 1] * stack[sp]; end;
      5: begin stack[sp] := globals[a]; sp := sp + 1; end;
      6: begin sp := sp - 1; globals[a] := stack[sp]; end;
      7: begin sp := sp - 1;
           if stack[sp] <> 0 then pc := a; end;
      8: begin sp := sp - 1; writeint(stack[sp]); end;
      9: begin stack[sp] := stack[sp - 1]; sp := sp + 1; end
    end;
  end;
end.
)";

/**
 * Character scanner: a dense CASE synthesizes the input (jump table)
 * and a sparse CASE over punctuation classifies it (branch chain), so
 * one unit carries both lowerings.
 */
const char *const kScanner = R"(
program scanner;
const len = 72;
var src: array [0..71] of char;
    i, idents, nums, ops, semis, spaces: integer;
    c: char;
begin
  for i := 0 to len - 1 do begin
    case i mod 6 of
      0, 1: src[i] := chr(ord('a') + (i mod 26));
      2: src[i] := chr(ord('0') + (i mod 10));
      3: src[i] := '+';
      4: src[i] := ';';
      5: src[i] := ' '
    end;
  end;
  idents := 0; nums := 0; ops := 0; semis := 0; spaces := 0;
  for i := 0 to len - 1 do begin
    c := src[i];
    case c of
      '+', '-', '*': ops := ops + 1;
      ';': semis := semis + 1;
      ' ': spaces := spaces + 1
    else begin
      if (c >= 'a') and (c <= 'z') then idents := idents + 1
      else nums := nums + 1;
    end
    end;
  end;
  writeint(idents); writechar(' '); writeint(nums); writechar(' ');
  writeint(ops); writechar(' '); writeint(semis); writechar(' ');
  writeint(spaces);
end.
)";

/**
 * Protocol state machine: a CASE over the current state whose arm for
 * the "open" state nests a second CASE over the event — two jump
 * tables, one inside the other.
 */
const char *const kProtocol = R"(
program protocol;
const nev = 60;
var state, i, ev, accepted, dropped, resets: integer;
begin
  state := 0; accepted := 0; dropped := 0; resets := 0;
  for i := 0 to nev - 1 do begin
    ev := (i * 3 + i div 4) mod 5;
    case state of
      0: if ev = 0 then state := 1
         else dropped := dropped + 1;
      1: case ev of
           0: state := 1;
           1: dropped := dropped + 1;
           2: state := 2;
           3: begin state := 0; resets := resets + 1; end;
           4: dropped := dropped + 1
         end;
      2: if ev < 3 then begin
           accepted := accepted + 1; state := 3;
         end else begin
           state := 0; resets := resets + 1;
         end;
      3: begin accepted := accepted + 1; state := 0; end
    end;
  end;
  writeint(state); writechar(' '); writeint(accepted);
  writechar(' '); writeint(dropped); writechar(' ');
  writeint(resets);
end.
)";

// ---------------------------------------------------- Table 11 programs

const char *const kFibonacci = R"(
program fibonacci;
function fib(n: integer): integer;
begin
  if n < 2 then fib := n
  else fib := fib(n - 1) + fib(n - 2);
end;
begin
  writeint(fib(16));
end.
)";

/**
 * Baskett's Puzzle, scaled to a 6x6 board: one horizontal bar, one
 * vertical bar, four 2x2 squares, and twelve unit pieces tile the 36
 * cells exactly. The recursive trial/fit/place/remove structure and
 * the placement counter follow the original benchmark.
 */
const char *const kPuzzle0 = R"(
program puzzle0;
const w = 6; size = 36; nclasses = 4;
var board: array [0..35] of integer;
    shapes: array [0..15] of integer;
    sizes: array [0..3] of integer;
    counts: array [0..3] of integer;
    kount, placed: integer;
    solved: boolean;
function fit(pc, where: integer): boolean;
var k, off: integer; good: boolean;
begin
  good := true;
  if (pc = 0) and ((where mod w) > w - 4) then good := false;
  if (pc = 1) and (where >= w * 3) then good := false;
  if (pc = 2) and (((where mod w) > w - 2) or (where >= size - w))
    then good := false;
  k := 0;
  while (k < sizes[pc]) and good do begin
    off := where + shapes[pc * 4 + k];
    if off >= size then good := false
    else if board[off] <> 0 then good := false;
    k := k + 1;
  end;
  fit := good;
end;
procedure place(pc, where: integer);
var k: integer;
begin
  for k := 0 to sizes[pc] - 1 do
    board[where + shapes[pc * 4 + k]] := 1;
  counts[pc] := counts[pc] - 1;
  placed := placed + sizes[pc];
end;
procedure remove(pc, where: integer);
var k: integer;
begin
  for k := 0 to sizes[pc] - 1 do
    board[where + shapes[pc * 4 + k]] := 0;
  counts[pc] := counts[pc] + 1;
  placed := placed - sizes[pc];
end;
function trial(where: integer): boolean;
var pc, next: integer; ok: boolean;
begin
  kount := kount + 1;
  if placed = size then trial := true
  else begin
    next := where;
    while board[next] <> 0 do next := next + 1;
    ok := false;
    pc := 0;
    while (pc < nclasses) and (not ok) do begin
      if counts[pc] > 0 then
        if fit(pc, next) then begin
          place(pc, next);
          ok := trial(next + 1);
          if not ok then remove(pc, next);
        end;
      pc := pc + 1;
    end;
    trial := ok;
  end;
end;
begin
  for kount := 0 to size - 1 do board[kount] := 0;
  shapes[0] := 0; shapes[1] := 1; shapes[2] := 2; shapes[3] := 3;
  shapes[4] := 0; shapes[5] := w; shapes[6] := w * 2;
  shapes[7] := w * 3;
  shapes[8] := 0; shapes[9] := 1; shapes[10] := w;
  shapes[11] := w + 1;
  shapes[12] := 0; shapes[13] := 0; shapes[14] := 0; shapes[15] := 0;
  sizes[0] := 4; sizes[1] := 4; sizes[2] := 4; sizes[3] := 1;
  counts[0] := 1; counts[1] := 1; counts[2] := 4; counts[3] := 12;
  kount := 0; placed := 0;
  solved := trial(0);
  if solved then writechar('Y') else writechar('N');
  writeint(kount);
end.
)";

/**
 * The same puzzle in the "pointer" style of the paper's Puzzle 1:
 * shape offsets and the board scan walk explicit cursors instead of
 * recomputed subscripts.
 */
const char *const kPuzzle1 = R"(
program puzzle1;
const w = 6; size = 36; nclasses = 4;
var board: array [0..35] of integer;
    shapes: array [0..15] of integer;
    sizes: array [0..3] of integer;
    counts: array [0..3] of integer;
    kount, placed: integer;
    solved: boolean;
function fit(pc, where: integer): boolean;
var p, limit, off: integer; good: boolean;
begin
  good := true;
  if (pc = 0) and ((where mod w) > w - 4) then good := false;
  if (pc = 1) and (where >= w * 3) then good := false;
  if (pc = 2) and (((where mod w) > w - 2) or (where >= size - w))
    then good := false;
  p := pc * 4;
  limit := p + sizes[pc];
  while (p < limit) and good do begin
    off := where + shapes[p];
    if off >= size then good := false
    else if board[off] <> 0 then good := false;
    p := p + 1;
  end;
  fit := good;
end;
procedure place(pc, where: integer);
var p, limit: integer;
begin
  p := pc * 4;
  limit := p + sizes[pc];
  while p < limit do begin
    board[where + shapes[p]] := 1;
    p := p + 1;
  end;
  counts[pc] := counts[pc] - 1;
  placed := placed + sizes[pc];
end;
procedure remove(pc, where: integer);
var p, limit: integer;
begin
  p := pc * 4;
  limit := p + sizes[pc];
  while p < limit do begin
    board[where + shapes[p]] := 0;
    p := p + 1;
  end;
  counts[pc] := counts[pc] + 1;
  placed := placed - sizes[pc];
end;
function trial(where: integer): boolean;
var pc, next: integer; ok: boolean;
begin
  kount := kount + 1;
  if placed = size then trial := true
  else begin
    next := where;
    while board[next] <> 0 do next := next + 1;
    ok := false;
    pc := 0;
    while (pc < nclasses) and (not ok) do begin
      if counts[pc] > 0 then
        if fit(pc, next) then begin
          place(pc, next);
          ok := trial(next + 1);
          if not ok then remove(pc, next);
        end;
      pc := pc + 1;
    end;
    trial := ok;
  end;
end;
begin
  for kount := 0 to size - 1 do board[kount] := 0;
  shapes[0] := 0; shapes[1] := 1; shapes[2] := 2; shapes[3] := 3;
  shapes[4] := 0; shapes[5] := w; shapes[6] := w * 2;
  shapes[7] := w * 3;
  shapes[8] := 0; shapes[9] := 1; shapes[10] := w;
  shapes[11] := w + 1;
  shapes[12] := 0; shapes[13] := 0; shapes[14] := 0; shapes[15] := 0;
  sizes[0] := 4; sizes[1] := 4; sizes[2] := 4; sizes[3] := 1;
  counts[0] := 1; counts[1] := 1; counts[2] := 4; counts[3] := 12;
  kount := 0; placed := 0;
  solved := trial(0);
  if solved then writechar('Y') else writechar('N');
  writeint(kount);
end.
)";

} // namespace

const std::vector<CorpusProgram> &
corpus()
{
    static const std::vector<CorpusProgram> programs = {
        {"tokenizer", kTokenizer, ""},
        {"symtab", kSymtab, "29 19"},
        {"textformat", kTextFormat, "16AB"},
        {"calculator", kCalculator, ""},
        {"gatecount", kGateCount, "20 20 20 4 150"},
        {"router", kRouter, ""},
        {"sorter", kSorter, "0a40o"},
        {"checksum", kChecksum, ""},
    };
    return programs;
}

const std::vector<CorpusProgram> &
dispatchCorpus()
{
    static const std::vector<CorpusProgram> programs = {
        {"bytecode", kBytecode, "120"},
        {"scanner", kScanner, "24 12 12 12 12"},
        {"protocol", kProtocol, "0 6 36 6"},
    };
    return programs;
}

const CorpusProgram &
fibonacciProgram()
{
    static const CorpusProgram program = {"fibonacci", kFibonacci,
                                          "987"};
    return program;
}

const CorpusProgram &
puzzle0Program()
{
    static const CorpusProgram program = {"puzzle0", kPuzzle0, ""};
    return program;
}

const CorpusProgram &
puzzle1Program()
{
    static const CorpusProgram program = {"puzzle1", kPuzzle1, ""};
    return program;
}

} // namespace mips::workload
