/**
 * @file
 * The embedded program corpus.
 *
 * The paper's measurements come from "a collection of Pascal programs
 * including compilers, optimizers, and VLSI design aid software; the
 * programs are reasonably involved with text handling, and little or
 * no compute intensive (e.g., floating point) tasks are included".
 * That exact corpus is lost to history; this module carries a set of
 * programs with the same character — lexing, symbol tables, text
 * formatting, expression evaluation, netlist processing, grid routing,
 * sorting, checksumming — written in the Pascal-like source language.
 *
 * Each program is deterministic and prints a short result so that the
 * test suite can verify end-to-end correctness on both machines and
 * under both data layouts.
 *
 * The Table 11 benchmark programs (recursive Fibonacci and the two
 * Puzzle variants — Baskett's informal compute-bound benchmark in a
 * subscripted and a cursor/pointer-styled form, scaled to an 8x8
 * board so simulation stays fast) are exposed separately.
 */
#pragma once

#include <string>
#include <vector>

namespace mips::workload {

/** One corpus program. */
struct CorpusProgram
{
    const char *name;
    const char *source;
    /** Expected console output (empty when not checked). */
    const char *expected_output;
};

/** The analysis corpus (Tables 1, 3, 4, 7, 8). */
const std::vector<CorpusProgram> &corpus();

/**
 * Dispatch-heavy programs (bytecode interpreter, token scanner,
 * protocol state machine) exercising CASE dispatch. Kept separate
 * from corpus() so the paper's reference-distribution tables stay
 * byte-identical; the verify/TV/cost/range gates and the dispatch
 * experiment run over these. Mirror sources live under
 * tests/data/dispatch/.
 */
const std::vector<CorpusProgram> &dispatchCorpus();

/** Recursive Fibonacci (Table 11). */
const CorpusProgram &fibonacciProgram();

/** Puzzle, subscripted variant (Table 11's "Puzzle 0"). */
const CorpusProgram &puzzle0Program();

/** Puzzle, cursor/pointer-styled variant (Table 11's "Puzzle 1"). */
const CorpusProgram &puzzle1Program();

} // namespace mips::workload
