/**
 * @file
 * Assembler tests: parsing of every statement family, label
 * resolution, error reporting, directives, and the
 * disassemble/reassemble round trip.
 */
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "isa/disasm.h"
#include "support/rng.h"

namespace mips::assembler {
namespace {

using isa::AluOp;
using isa::Cond;
using isa::Instruction;
using isa::JumpKind;
using isa::MemMode;

Program
mustAssemble(std::string_view src)
{
    auto prog = assemble(src);
    EXPECT_TRUE(prog.ok()) << (prog.ok() ? "" : prog.error().str());
    return prog.take();
}

TEST(Asm, AluForms)
{
    Program p = mustAssemble(
        "add r1, r2, r3\n"
        "sub r1, #4, r3\n"
        "rsub r1, #1, r3\n"
        "movi #200, r4\n"
        "seteq r1, r2, r5\n"
        "setltu r1, #3, r5\n"
        "not r1, r2\n"
        "xc r0, r1, r1\n"
        "mtlo r2\n"
        "ic r3, r2\n"
        "mflo r6\n");
    ASSERT_EQ(p.size(), 11u);
    EXPECT_EQ(p.words[0].alu->op, AluOp::ADD);
    EXPECT_EQ(p.words[1].alu->src2.imm4, 4);
    EXPECT_EQ(p.words[2].alu->op, AluOp::RSUB);
    EXPECT_EQ(p.words[3].alu->imm8, 200);
    EXPECT_EQ(p.words[4].alu->cond, Cond::EQ);
    EXPECT_EQ(p.words[5].alu->cond, Cond::LTU);
    EXPECT_EQ(p.words[6].alu->op, AluOp::NOT);
    EXPECT_EQ(p.words[7].alu->op, AluOp::XC);
    EXPECT_EQ(p.words[8].alu->op, AluOp::MTLO);
    EXPECT_EQ(p.words[9].alu->op, AluOp::IC);
    EXPECT_EQ(p.words[10].alu->op, AluOp::MFLO);
}

TEST(Asm, MemForms)
{
    Program p = mustAssemble(
        "ld @100, r1\n"
        "ld 2(r13), r1\n"
        "ld -5(r13), r1\n"
        "ld (r1+r2), r3\n"
        "ld (r1+r2>>2), r3\n"
        "ldi #70000, r1\n"
        "st r1, 2(r13)\n"
        "st r1, (r2+r3>>1)\n");
    ASSERT_EQ(p.size(), 8u);
    EXPECT_EQ(p.words[0].mem->mode, MemMode::ABSOLUTE);
    EXPECT_EQ(p.words[1].mem->imm, 2);
    EXPECT_EQ(p.words[2].mem->imm, -5);
    EXPECT_EQ(p.words[3].mem->mode, MemMode::BASE_INDEX);
    EXPECT_EQ(p.words[4].mem->shift, 2);
    EXPECT_EQ(p.words[5].mem->mode, MemMode::LONG_IMM);
    EXPECT_EQ(p.words[5].mem->imm, 70000);
    EXPECT_TRUE(p.words[6].mem->is_store);
    EXPECT_TRUE(p.words[7].mem->is_store);
    EXPECT_EQ(p.words[7].mem->shift, 1);
}

TEST(Asm, PackedSource)
{
    Program p = mustAssemble("add r1, #1, r2 | ld 3(r4), r5\n");
    ASSERT_EQ(p.size(), 1u);
    EXPECT_TRUE(p.words[0].alu.has_value());
    EXPECT_TRUE(p.words[0].mem.has_value());

    // Either order works.
    Program q = mustAssemble("ld 3(r4), r5 | add r1, #1, r2\n");
    EXPECT_EQ(q.words[0], p.words[0]);
}

TEST(Asm, BranchesAndLabels)
{
    Program p = mustAssemble(
        "start:\n"
        "  movi #0, r1\n"
        "loop:\n"
        "  add r1, #1, r1\n"
        "  blt r1, #10, loop\n"
        "  bra start\n"
        "  beq r1, r2, done\n"
        "  nop\n"
        "done:\n"
        "  halt\n");
    EXPECT_EQ(p.symbol("start"), 0u);
    EXPECT_EQ(p.symbol("loop"), 1u);
    EXPECT_EQ(p.symbol("done"), 6u);
    // blt at addr 2: offset = 1 - (2+1) = -2
    EXPECT_EQ(p.words[2].branch->offset, -2);
    // bra at addr 3: offset = 0 - 4 = -4
    EXPECT_EQ(p.words[3].branch->offset, -4);
    EXPECT_EQ(p.words[3].branch->cond, Cond::ALWAYS);
    // beq at addr 4: offset = 6 - 5 = 1
    EXPECT_EQ(p.words[4].branch->offset, 1);
}

TEST(Asm, JumpsAndCalls)
{
    Program p = mustAssemble(
        "  jmp there\n"
        "  nop\n"
        "  call there, r15\n"
        "  nop\n"
        "  jmp (r15)\n"
        "  call (r7), r15\n"
        "there:\n"
        "  halt\n");
    EXPECT_EQ(p.words[0].jump->kind, JumpKind::DIRECT);
    EXPECT_EQ(p.words[0].jump->target_addr, 6u);
    EXPECT_EQ(p.words[2].jump->kind, JumpKind::CALL_DIRECT);
    EXPECT_EQ(p.words[2].jump->target_addr, 6u);
    EXPECT_EQ(p.words[2].jump->link, 15);
    EXPECT_EQ(p.words[4].jump->kind, JumpKind::INDIRECT);
    EXPECT_EQ(p.words[4].jump->target_reg, 15);
    EXPECT_EQ(p.words[5].jump->kind, JumpKind::CALL_INDIRECT);
    EXPECT_EQ(p.words[5].jump->target_reg, 7);
}

TEST(Asm, SpecialForms)
{
    Program p = mustAssemble(
        "trap #9\n"
        "rfe\n"
        "halt\n"
        "nop\n"
        "mfs sr, r1\n"
        "mts r1, segpid\n"
        "mfs ra0, r2\n");
    EXPECT_EQ(p.words[0].special->trap_code, 9);
    EXPECT_EQ(p.words[1].special->op, isa::SpecialOp::RFE);
    EXPECT_EQ(p.words[4].special->sreg, isa::SpecialReg::SURPRISE);
    EXPECT_EQ(p.words[5].special->sreg, isa::SpecialReg::SEG_PID);
    EXPECT_EQ(p.words[6].special->sreg, isa::SpecialReg::RA0);
}

TEST(Asm, Pseudos)
{
    Program p = mustAssemble(
        "mov r1, r2\n"
        "li #5, r3\n"
        "li #300, r4\n"    // does not fit movi -> still movi? 300>255
        "li #-7, r5\n");
    EXPECT_EQ(p.words[0].alu->op, AluOp::ADD);
    EXPECT_EQ(p.words[0].alu->src2.imm4, 0);
    EXPECT_EQ(p.words[1].alu->op, AluOp::MOVI8);
    EXPECT_EQ(p.words[2].mem->mode, MemMode::LONG_IMM);
    EXPECT_EQ(p.words[2].mem->imm, 300);
    EXPECT_EQ(p.words[3].mem->imm, -7);
}

TEST(Asm, DirectivesAndData)
{
    Program p = mustAssemble(
        ".org 100\n"
        "entry: movi #1, r1\n"
        "tbl: .word 0xdead\n"
        ".word 'A'\n"
        ".space 3\n"
        "end: halt\n");
    EXPECT_EQ(p.origin, 100u);
    EXPECT_EQ(p.symbol("entry"), 100u);
    EXPECT_EQ(p.symbol("tbl"), 101u);
    EXPECT_EQ(p.image[1], 0xdeadu);
    EXPECT_EQ(p.image[2], 65u);
    EXPECT_EQ(p.symbol("end"), 106u);
}

TEST(Asm, AsciiwPacksFourPerWord)
{
    Program p = mustAssemble(".asciiw \"abcd\"\n");
    // "abcd" + NUL = 5 bytes = 2 words.
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.image[0], 0x64636261u); // little-endian packing
    EXPECT_EQ(p.image[1], 0u);

    Program q = mustAssemble(".asciiw \"abc\"\n");
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q.image[0], 0x00636261u);
}

TEST(Asm, CommentsAndBlankLines)
{
    Program p = mustAssemble(
        "; full-line comment\n"
        "\n"
        "   \t \n"
        "movi #1, r1 ; trailing comment\n");
    EXPECT_EQ(p.size(), 1u);
}

TEST(Asm, NumericBranchTarget)
{
    Program p = mustAssemble(
        "beq r1, #0, 10\n"
        "nop\n");
    // At addr 0, target 10 -> offset 9.
    EXPECT_EQ(p.words[0].branch->offset, 9);
}

TEST(AsmErrors, ReportLineNumbers)
{
    auto r = assemble("nop\nbogus r1\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().line, 2);
}

TEST(AsmErrors, Various)
{
    EXPECT_FALSE(assemble("add r1, r2\n").ok());          // arity
    EXPECT_FALSE(assemble("add r1, #16, r2\n").ok());     // imm4 range
    EXPECT_FALSE(assemble("movi #256, r1\n").ok());       // imm8 range
    EXPECT_FALSE(assemble("ld 2(r16), r1\n").ok());       // bad reg
    EXPECT_FALSE(assemble("bra nowhere\n").ok());         // undef label
    EXPECT_FALSE(assemble("x: nop\nx: nop\n").ok());      // dup label
    EXPECT_FALSE(assemble("trap #4096\n").ok());          // trap range
    EXPECT_FALSE(assemble("li #3000000, r1\n").ok());     // li range
    EXPECT_FALSE(assemble(".org 10\nnop\n.org 20\n").ok());
    EXPECT_FALSE(assemble("set r1, r2, r3\n").ok());      // no cond
    EXPECT_FALSE(assemble("beq r1, r2, l | add r1, r2, r3\nl:\n").ok());
    EXPECT_FALSE(assemble("movi #1, r1 | movi #2, r2\n").ok());
    EXPECT_FALSE(assemble("ld (r1+r2>>9), r3\n").ok());   // shift range
    EXPECT_FALSE(assemble("st r1, @3000000\n").ok());     // abs range
    EXPECT_FALSE(assemble(".word\n").ok());
    EXPECT_FALSE(assemble(".bogus\n").ok());
}

TEST(Asm, BranchOutOfRangeRejected)
{
    // A branch further than the 16-bit signed offset field.
    std::string src = "bra far\n.space 40000\nfar: halt\n";
    EXPECT_FALSE(assemble(src).ok());
}

/** Property: disassemble then reassemble reproduces the image. */
TEST(Asm, DisasmRoundTripProperty)
{
    const char *src =
        "start:\n"
        "  movi #42, r1\n"
        "  ldi #100000, r2\n"
        "  add r1, r2, r3 | ld 2(r13), r4\n"
        "  seteq r3, #0, r5\n"
        "  xc r1, r4, r6\n"
        "  mtlo r1\n"
        "  ic r6, r4\n"
        "  st r4, (r2+r1>>2)\n"
        "  bge r3, r5, start\n"
        "  nop\n"
        "  call start, r15\n"
        "  nop\n"
        "  jmp (r15)\n"
        "  trap #17\n"
        "  halt\n";
    Program p = mustAssemble(src);

    std::string listing;
    for (size_t i = 0; i < p.words.size(); ++i) {
        listing += isa::disasm(p.words[i],
                               p.origin + static_cast<uint32_t>(i));
        listing += "\n";
    }
    Program q = mustAssemble(listing);
    ASSERT_EQ(q.size(), p.size());
    for (size_t i = 0; i < p.words.size(); ++i)
        EXPECT_EQ(q.image[i], p.image[i]) << "at word " << i
            << ": " << isa::disasm(p.words[i]);
}

TEST(Asm, ListUnitShowsLabels)
{
    auto unit = parse("loop: add r1, #1, r1\nbra loop\n");
    ASSERT_TRUE(unit.ok());
    std::string text = listUnit(unit.value());
    EXPECT_NE(text.find("loop:"), std::string::npos);
    EXPECT_NE(text.find("bra loop"), std::string::npos);
}

TEST(Asm, NoreorderMarksItems)
{
    auto unit = parse(
        "add r1, #1, r1\n"
        ".noreorder\n"
        "add r2, #1, r2\n"
        ".reorder\n"
        "add r3, #1, r3\n");
    ASSERT_TRUE(unit.ok());
    const auto &items = unit.value().items;
    ASSERT_EQ(items.size(), 3u);
    EXPECT_FALSE(items[0].no_reorder);
    EXPECT_TRUE(items[1].no_reorder);
    EXPECT_FALSE(items[2].no_reorder);
}

} // namespace
} // namespace mips::assembler
