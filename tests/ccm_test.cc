/**
 * @file
 * Condition-code baseline tests: expression trees, the four code
 * generators (checked for correctness against eval() over every leaf
 * assignment), the paper's Figure 1-3 instruction counts, Table 5
 * per-operator counts, Table 6 cost ordering, and the taxonomy.
 */
#include <gtest/gtest.h>

#include "ccm/boolexpr.h"
#include "ccm/codegen.h"
#include "ccm/cost.h"
#include "ccm/taxonomy.h"

namespace mips::ccm {
namespace {

TEST(BoolExprTest, CountsAndEval)
{
    BoolExprPtr e = paperExample();
    EXPECT_EQ(e->operatorCount(), 1);
    EXPECT_EQ(e->leafCount(), 2);

    std::map<std::string, int32_t> env{
        {"Rec", 4}, {"Key", 4}, {"I", 12}};
    EXPECT_TRUE(e->eval(env));
    env["Rec"] = 5;
    EXPECT_FALSE(e->eval(env));
    env["I"] = 13;
    EXPECT_TRUE(e->eval(env));
}

TEST(BoolExprTest, OrChainShape)
{
    BoolExprPtr e = orChain(3);
    EXPECT_EQ(e->operatorCount(), 3);
    EXPECT_EQ(e->leafCount(), 4);
}

TEST(BoolExprTest, NotAndClone)
{
    BoolExprPtr e = makeNot(makeAnd(
        makeLeafConst("a", isa::Cond::GT, 0),
        makeLeafConst("b", isa::Cond::LT, 0)));
    EXPECT_EQ(e->operatorCount(), 2);
    BoolExprPtr c = clone(*e);
    std::map<std::string, int32_t> env{{"a", 1}, {"b", -1}};
    EXPECT_EQ(e->eval(env), c->eval(env));
    EXPECT_FALSE(e->eval(env));
}

TEST(BoolExprTest, ToString)
{
    EXPECT_EQ(exprToString(*paperExample()),
              "(Rec eq Key) OR (I eq 13)");
}

// --------------------------------------------------- Generator checks

constexpr Style kAllStyles[] = {
    Style::SET_CONDITIONALLY,
    Style::CC_COND_SET,
    Style::CC_BRANCH_FULL,
    Style::CC_BRANCH_EARLY_OUT,
};

/** expectedDynamicCounts panics internally if any generated program
 *  disagrees with eval() on any leaf assignment, so running it doubles
 *  as an exhaustive correctness check. */
TEST(CcCodegen, AllStylesCorrectOnCanonicalExpressions)
{
    std::vector<BoolExprPtr> exprs;
    exprs.push_back(paperExample());
    exprs.push_back(orChain(0));
    exprs.push_back(orChain(2));
    exprs.push_back(makeAnd(makeLeafConst("x", isa::Cond::GE, 3),
                            makeLeafConst("y", isa::Cond::NE, 0)));
    exprs.push_back(makeNot(makeOr(
        makeLeafConst("p", isa::Cond::LT, 10),
        makeAnd(makeLeafConst("q", isa::Cond::EQ, 1),
                makeLeafConst("r", isa::Cond::GT, -1)))));

    for (const BoolExprPtr &e : exprs) {
        for (Style style : kAllStyles) {
            for (Context ctx : {Context::STORE, Context::JUMP}) {
                CcProgram prog = generate(*e, style, ctx);
                ClassCounts counts = expectedDynamicCounts(prog, *e);
                EXPECT_GT(counts.total(), 0.0)
                    << styleName(style) << "\n" << prog.listing();
            }
        }
    }
}

TEST(CcCodegen, Figure1FullEvaluationShape)
{
    // Figure 1 left: 8 static instructions, 2 branches, average of 7
    // executed (each taken branch skips one instruction half the time).
    BoolExprPtr e = paperExample();
    CcProgram prog = generate(*e, Style::CC_BRANCH_FULL,
                              Context::STORE);
    EXPECT_EQ(prog.staticCount(), 8) << prog.listing();
    EXPECT_EQ(prog.staticCount(CcClass::BRANCH), 2);
    ClassCounts dyn = expectedDynamicCounts(prog, *e);
    EXPECT_NEAR(dyn.total(), 7.0, 1e-9);
    EXPECT_NEAR(dyn.branch, 2.0, 1e-9); // both branches always execute
}

TEST(CcCodegen, Figure1EarlyOutShape)
{
    // Figure 1 right: 6 static instructions, 2 branches, one branch
    // executed on average... our rendition adds the final store, so we
    // check the paper's invariants relative to full evaluation.
    BoolExprPtr e = paperExample();
    CcProgram early = generate(*e, Style::CC_BRANCH_EARLY_OUT,
                               Context::STORE);
    CcProgram full = generate(*e, Style::CC_BRANCH_FULL,
                              Context::STORE);
    EXPECT_LT(early.staticCount(), full.staticCount())
        << early.listing();
    ClassCounts dyn_early = expectedDynamicCounts(early, *e);
    ClassCounts dyn_full = expectedDynamicCounts(full, *e);
    EXPECT_LT(dyn_early.total(), dyn_full.total());
    // Early-out executes fewer compares when the first leaf decides.
    EXPECT_LT(dyn_early.compare, 2.0);
}

TEST(CcCodegen, Figure2CondSetShape)
{
    // Figure 2: cmp, seq, cmp, seq, or (+ the store) — no branches.
    BoolExprPtr e = paperExample();
    CcProgram prog = generate(*e, Style::CC_COND_SET, Context::STORE);
    EXPECT_EQ(prog.staticCount(CcClass::BRANCH), 0) << prog.listing();
    EXPECT_EQ(prog.staticCount(CcClass::COMPARE), 2);
    // cmp,seq,cmp,seq,or = 5 + final store = 6.
    EXPECT_EQ(prog.staticCount(), 6);
}

TEST(CcCodegen, Figure3SetConditionallyShape)
{
    // Figure 3: seq, seq, or = 3 instructions, no branches (+ store).
    BoolExprPtr e = paperExample();
    CcProgram prog = generate(*e, Style::SET_CONDITIONALLY,
                              Context::STORE);
    EXPECT_EQ(prog.staticCount(CcClass::BRANCH), 0) << prog.listing();
    EXPECT_EQ(prog.staticCount(CcClass::COMPARE), 2);
    EXPECT_EQ(prog.staticCount(), 4); // set, set, or, store
}

TEST(CcCodegen, SingleLeafJumpIsOneCompareBranch)
{
    BoolExprPtr e = orChain(0);
    CcProgram prog = generate(*e, Style::SET_CONDITIONALLY,
                              Context::JUMP);
    EXPECT_EQ(prog.staticCount(), 1) << prog.listing();
    EXPECT_EQ(prog.staticCount(CcClass::BRANCH), 1);
}

// ----------------------------------------------- Table 5 (per operator)

/** Marginal per-operator counts: counts(orChain(2)) - counts(orChain(1)). */
ClassCounts
marginalStatic(Style style, Context ctx)
{
    BoolExprPtr e1 = orChain(1), e2 = orChain(2);
    ClassCounts a = staticCounts(generate(*e1, style, ctx));
    ClassCounts b = staticCounts(generate(*e2, style, ctx));
    return ClassCounts{b.compare - a.compare, b.reg - a.reg,
                       b.branch - a.branch};
}

TEST(Table5, SetConditionallyPerOperator)
{
    // Paper: 2/1/0 — here the marginal operator adds 1 compare (the
    // new leaf's set-conditionally) and 1 register op (the OR); the
    // paper counts both of a single operator's leaves, i.e. 2 compares
    // per operator at one operator. Check the one-operator absolute.
    ClassCounts c = staticCounts(generate(*orChain(1),
                                          Style::SET_CONDITIONALLY,
                                          Context::STORE));
    EXPECT_EQ(c.compare, 2);     // two set-conditionally instructions
    EXPECT_EQ(c.reg, 2);         // or + final store
    EXPECT_EQ(c.branch, 0);
}

TEST(Table5, CondSetPerOperator)
{
    // Paper: 2/3/0 for one operator (2 cmp, 2 scc + 1 or).
    ClassCounts c = staticCounts(generate(*orChain(1),
                                          Style::CC_COND_SET,
                                          Context::STORE));
    EXPECT_EQ(c.compare, 2);
    EXPECT_EQ(c.reg, 4); // 2 scc + or + final store
    EXPECT_EQ(c.branch, 0);
}

TEST(Table5, BranchOnlyFullPerOperator)
{
    // Paper: 2/2/2 for one operator.
    ClassCounts c = staticCounts(generate(*orChain(1),
                                          Style::CC_BRANCH_FULL,
                                          Context::STORE));
    EXPECT_EQ(c.compare, 2);
    EXPECT_EQ(c.branch, 2);
}

TEST(Table5, BranchOnlyEarlyOutDynamicBranches)
{
    // Paper: 2/0/2 static, 2/0/1.5 dynamic per operator in the jump
    // context (the second branch is skipped when the first leaf
    // decides).
    BoolExprPtr e = orChain(1);
    CcProgram prog = generate(*e, Style::CC_BRANCH_EARLY_OUT,
                              Context::JUMP);
    ClassCounts sc = staticCounts(prog);
    EXPECT_EQ(sc.compare, 2);
    EXPECT_EQ(sc.reg, 0);
    EXPECT_EQ(sc.branch, 2);
    ClassCounts dyn = expectedDynamicCounts(prog, *e);
    EXPECT_NEAR(dyn.branch, 1.5, 1e-9);
    EXPECT_NEAR(dyn.compare, 1.5, 1e-9);
}

TEST(Table5, MarginalOperatorCostsOrdered)
{
    // Per additional operator, MIPS-style needs the fewest weighted
    // operations and branch-only-full the most.
    CostWeights w;
    double mips = marginalStatic(Style::SET_CONDITIONALLY,
                                 Context::STORE)
        .cost(w.reg_time, w.cmp_time, w.branch_time);
    double condset = marginalStatic(Style::CC_COND_SET, Context::STORE)
        .cost(w.reg_time, w.cmp_time, w.branch_time);
    double full = marginalStatic(Style::CC_BRANCH_FULL, Context::STORE)
        .cost(w.reg_time, w.cmp_time, w.branch_time);
    EXPECT_LT(mips, condset);
    EXPECT_LT(condset, full);
}

// ------------------------------------------------------- Table 6 costs

TEST(Table6, OrderingMatchesPaper)
{
    // The paper's conclusion: set-conditionally < CC/cond-set <
    // CC/branch-only, in both contexts; early-out narrows but does not
    // close the gap.
    ExprMix mix;
    Table6Entry mips = table6Entry(Style::SET_CONDITIONALLY, mix);
    Table6Entry condset = table6Entry(Style::CC_COND_SET, mix);
    Table6Entry full = table6Entry(Style::CC_BRANCH_FULL, mix);
    Table6Entry early = table6Entry(Style::CC_BRANCH_EARLY_OUT, mix);

    EXPECT_LT(mips.total_cost, condset.total_cost);
    EXPECT_LT(condset.total_cost, full.total_cost);
    EXPECT_LT(early.total_cost, full.total_cost);
    EXPECT_LT(mips.total_cost, early.total_cost);

    // Improvements in the paper's ballpark: conditional set saves
    // ~33% over branch-only full evaluation; set-conditionally ~53%.
    double imp_condset = 1.0 - condset.total_cost / full.total_cost;
    double imp_mips = 1.0 - mips.total_cost / full.total_cost;
    EXPECT_GT(imp_condset, 0.15);
    EXPECT_GT(imp_mips, imp_condset);
    EXPECT_GT(imp_mips, 0.35);
}

TEST(Table6, JumpContextCostsMoreThanStore)
{
    // Reaching a branch decision costs at least as much as storing for
    // every style (the branch itself is the most expensive op).
    for (Style style : kAllStyles) {
        Table6Entry e = table6Entry(style);
        EXPECT_GT(e.jump_cost, 0.0);
        EXPECT_GT(e.store_cost, 0.0);
    }
}

// ------------------------------------------------------------ Taxonomy

TEST(Taxonomy, MatchesTable2)
{
    const auto &machines = ccTaxonomy();
    ASSERT_EQ(machines.size(), 5u);
    auto find = [&](const std::string &name) -> const MachineCc & {
        for (const MachineCc &m : machines)
            if (m.name == name)
                return m;
        ADD_FAILURE() << "missing machine " << name;
        static MachineCc dummy;
        return dummy;
    };
    EXPECT_FALSE(find("MIPS").has_cc);
    EXPECT_FALSE(find("PDP-10").has_cc);
    EXPECT_TRUE(find("VAX").set_on_moves);
    EXPECT_TRUE(find("M68000").conditional_set);
    EXPECT_FALSE(find("360").set_on_moves);
    std::string table = taxonomyTable();
    EXPECT_NE(table.find("MIPS"), std::string::npos);
    EXPECT_NE(table.find("Set on moves"), std::string::npos);
}

} // namespace
} // namespace mips::ccm
