/**
 * @file
 * Integration tests over the experiment drivers: every table/figure
 * driver runs, and the paper's qualitative results hold — who wins,
 * by roughly what factor, and where the crossovers fall.
 */
#include <gtest/gtest.h>

#include "core/experiments.h"

namespace mips::tradeoff {
namespace {

TEST(Table1, Imm4CoversMostConstants)
{
    Table1Result r = runTable1();
    EXPECT_FALSE(r.table.empty());
    // Paper: a 4-bit constant covers ~70%, the 8-bit immediate all but
    // ~5%. Our corpus must show the same tiering.
    EXPECT_GT(r.coveredByImm4(), 0.5);
    EXPECT_GT(r.coveredByImm8(), 0.85);
    EXPECT_GT(r.coveredByImm8(), r.coveredByImm4());
}

TEST(Table2, RendersTaxonomy)
{
    std::string t = runTable2();
    EXPECT_NE(t.find("MIPS"), std::string::npos);
    EXPECT_NE(t.find("VAX"), std::string::npos);
}

TEST(Table3, CcSavingsNegligible)
{
    Table3Result r = runTable3();
    EXPECT_GT(r.savings.compares, 50u);
    // The headline: condition codes save almost nothing.
    EXPECT_LT(r.savings.fracSavedWithMoves(), 0.30);
    EXPECT_LE(r.savings.fracSavedByOps(),
              r.savings.fracSavedWithMoves());
}

TEST(Table4, JumpDominatedMix)
{
    Table4Result r = runTable4();
    EXPECT_GT(r.shape.fracJump(), 0.6);
    EXPECT_GT(r.shape.meanOperators(), 1.0);
}

TEST(Table5, MipsNeedsNoBranchesPerOperator)
{
    Table5Result r = runTable5();
    ASSERT_EQ(r.rows.size(), 4u);
    // Set-conditionally: no branch per operator; branch-only full
    // evaluation: branches per operator.
    EXPECT_EQ(r.rows[0].static_counts.branch, 0);
    EXPECT_GT(r.rows[2].static_counts.branch, 0);
    // Early-out dynamic branch count sits below its static count.
    EXPECT_LT(r.rows[3].dynamic_counts.branch,
              r.rows[3].static_counts.branch);
}

TEST(Table6, OrderingAndImprovements)
{
    Table6Result r = runTable6();
    ASSERT_EQ(r.rows.size(), 4u);
    double setcond = r.rows[0].entry.total_cost;
    double condset = r.rows[1].entry.total_cost;
    double full = r.rows[2].entry.total_cost;
    double early = r.rows[3].entry.total_cost;
    EXPECT_LT(setcond, condset);
    EXPECT_LT(condset, full);
    EXPECT_LT(early, full);
    EXPECT_LT(setcond, early);
    // Paper: 33% and 53.5% improvements over the full-evaluation CC
    // machine; ours must at least show the same tiering with sizable
    // margins.
    EXPECT_GT(r.improvement_cond_set, 0.15);
    EXPECT_GT(r.improvement_set_cond, 0.35);

    // The paper-mix variant reproduces the published ratios closely.
    Table6Result paper_mix = runTable6(true);
    EXPECT_NEAR(paper_mix.improvement_set_cond, 0.535, 0.12);
}

TEST(Tables7And8, ByteAllocationRaisesByteTraffic)
{
    RefPatternResult t7 = runTable7();
    RefPatternResult t8 = runTable8();
    double w8 = static_cast<double>(t7.refs.loads8 + t7.refs.stores8) /
                static_cast<double>(t7.refs.total());
    double b8 = static_cast<double>(t8.refs.loads8 + t8.refs.stores8) /
                static_cast<double>(t8.refs.total());
    EXPECT_LT(w8, b8);
    // Loads dominate in both (paper: 71.2% loads).
    double w_loads = static_cast<double>(t7.refs.loads8 +
                                         t7.refs.loads32) /
                     static_cast<double>(t7.refs.total());
    EXPECT_GT(w_loads, 0.5);
}

TEST(Table9, WordAddressingCostsMatchPaperStructure)
{
    Table9Result r = runTable9(0.15);
    ASSERT_EQ(r.rows.size(), 6u);
    auto find = [&r](const std::string &name) -> const Table9Row & {
        for (const Table9Row &row : r.rows)
            if (row.operation == name)
                return row;
        ADD_FAILURE() << name;
        static Table9Row dummy;
        return dummy;
    };
    // Word ops cost the same on MIPS but pay overhead on the byte
    // machine; byte ops cost more on MIPS (load +1 ALU op, store a
    // read-modify-write).
    const Table9Row &lw = find("load word");
    EXPECT_DOUBLE_EQ(lw.cost_mips, 4);
    EXPECT_GT(lw.cost_byte_overhead, lw.cost_mips);

    const Table9Row &lb = find("load byte via pointer");
    EXPECT_EQ(lb.cost_mips, 5);  // ld + xc
    const Table9Row &sb = find("store byte via pointer");
    EXPECT_EQ(sb.cost_mips, 10); // ld + mtlo + ic + st
    EXPECT_GT(lb.cost_mips, lb.cost_byte_machine);
}

TEST(Table10, WordAddressingWinsAtPaperOverheads)
{
    // The paper's claim: with 15-20% overhead and realistic reference
    // mixes, word addressing wins by roughly 8-15%.
    for (double overhead : {0.15, 0.20}) {
        Table10Result r = runTable10(overhead);
        EXPECT_GT(r.penalty[0], 0.0) << "word-allocated, ovh "
                                     << overhead;
        EXPECT_GT(r.penalty[1], 0.0) << "byte-allocated, ovh "
                                     << overhead;
        EXPECT_LT(r.penalty[0], 0.35);
        EXPECT_LT(r.penalty[1], 0.35);
    }
    // Crossover: with no hardware overhead, byte addressing must win
    // (it removes the extract/insert sequences for free).
    Table10Result zero = runTable10(0.0);
    EXPECT_LT(zero.byte_machine_cost[1], zero.word_machine_cost[1]);
}

TEST(Table11, PostpassImprovements)
{
    Table11Result r = runTable11();
    ASSERT_EQ(r.programs.size(), 3u);
    for (const Table11Program &p : r.programs) {
        // Each stage is monotone, total improvement in the paper's
        // 15-40% band.
        EXPECT_LE(p.reorganized, p.none) << p.name;
        EXPECT_LE(p.packed, p.reorganized) << p.name;
        EXPECT_LE(p.branch_delay, p.packed) << p.name;
        EXPECT_GT(p.totalImprovement(), 0.10) << p.name;
        EXPECT_LT(p.totalImprovement(), 0.45) << p.name;
        EXPECT_FALSE(p.output.empty()) << p.name;
    }
    EXPECT_EQ(r.programs[0].output, "987");
    EXPECT_EQ(r.programs[1].output, r.programs[2].output);
}

TEST(Figures, RenderWithExpectedShape)
{
    std::string figs = runFigures1to3();
    EXPECT_NE(figs.find("Figure 1a"), std::string::npos);
    EXPECT_NE(figs.find("Figure 3"), std::string::npos);
    EXPECT_NE(figs.find("seteq"), std::string::npos);

    std::string fig4 = runFigure4();
    EXPECT_NE(fig4.find("Legal code"), std::string::npos);
    EXPECT_NE(fig4.find("Reorganized"), std::string::npos);
}

TEST(Dispatch, ChainTableCrossover)
{
    DispatchResult r = runDispatchStudy();
    ASSERT_GE(r.programs.size(), 3u);
    for (const DispatchMeasurement &m : r.programs) {
        // Both lowerings must run to completion and agree.
        EXPECT_FALSE(m.output.empty()) << m.name;
        EXPECT_GT(m.chain_cycles, 0u) << m.name;
        EXPECT_GT(m.table_cycles, 0u) << m.name;
    }

    // The density sweep locates the crossover: tiny CASEs stay a
    // branch chain (identical both ways), dense wide ones dispatch
    // faster and smaller through the table.
    ASSERT_GE(r.density.size(), 4u);
    const DispatchMeasurement &narrow = r.density.front();
    const DispatchMeasurement &wide = r.density.back();
    EXPECT_EQ(narrow.chain_cycles, narrow.table_cycles) << narrow.name;
    EXPECT_EQ(narrow.chain_words, narrow.table_words) << narrow.name;
    EXPECT_LT(wide.table_cycles, wide.chain_cycles) << wide.name;
    EXPECT_LT(wide.table_words, wide.chain_words) << wide.name;
    EXPECT_GT(wide.tableSpeedup(), 0.05) << wide.name;

    // Chain cost grows with arm count; table dispatch cost does not.
    uint64_t prev_chain = 0;
    for (const DispatchMeasurement &m : r.density) {
        EXPECT_GE(m.chain_cycles, prev_chain) << m.name;
        prev_chain = m.chain_cycles;
    }
}

TEST(FreeCycles, SubstantialIdleBandwidth)
{
    FreeCyclesResult r = runFreeCycles();
    EXPECT_GT(r.corpus_free, 0.25);
    EXPECT_GT(r.benchmark_free, 0.25);
    EXPECT_LT(r.benchmark_free, 0.95);
}

} // namespace
} // namespace mips::tradeoff
