/**
 * @file
 * Static cycle-cost model tests: block partition and per-function
 * rollup on a small unit, text/JSON rendering, the parity checker's
 * violation detection, and the oracle sweep — the static model must
 * agree exactly with the simulator's dynamic per-word issue counts
 * over the whole reorganized corpus.
 */
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "pipeline/session.h"
#include "verify/costmodel.h"
#include "workload/corpus.h"

namespace mips::verify {
namespace {

using assembler::Unit;

Unit
parseUnit(std::string_view src)
{
    auto unit = assembler::parse(src);
    EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().str());
    return unit.take();
}

/** The smoke unit: a two-function program with one call. */
Unit
smokeUnit()
{
    return parseUnit(
        "movi #5, r1\n"       // 0
        "call f, r15\n"       // 1
        "nop\n"               // 2: slot
        "st r1, @100\n"       // 3: resume
        "halt\n"              // 4
        "f: add r1, #1, r1\n" // 5
        "jmp (r15)\n"         // 6
        "nop\n");             // 7
}

const FunctionCost *
funcNamed(const CostReport &report, const std::string &name)
{
    for (const FunctionCost &f : report.functions)
        if (f.name == name)
            return &f;
    return nullptr;
}

TEST(CostModel, BlocksAndRollupOnSmallUnit)
{
    Unit u = smokeUnit();
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph graph = buildCallGraph(cfg);
    CostReport report = computeCostModel(cfg, graph, "unit.s");

    EXPECT_EQ(report.totals.words, 8u);
    EXPECT_EQ(report.totals.instructions, 6u);
    EXPECT_EQ(report.totals.nops, 2u);
    ASSERT_EQ(report.functions.size(), 2u);
    const FunctionCost *entry = funcNamed(report, "<entry>");
    const FunctionCost *f = funcNamed(report, "f");
    ASSERT_NE(entry, nullptr);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(entry->words, 5u);
    EXPECT_EQ(f->words, 3u);
    // Rollup folds the callee's body into the caller once per site.
    EXPECT_EQ(entry->rollup_words, 8u);
    EXPECT_EQ(f->rollup_words, 3u);
    EXPECT_EQ(entry->unresolved_calls, 0u);
    EXPECT_FALSE(f->recursive);

    // Every non-data word belongs to exactly one block, and block
    // word counts sum to the unit total.
    uint64_t block_words = 0;
    for (const BlockCost &b : report.blocks) {
        EXPECT_TRUE(b.straight_line);
        block_words += b.count;
    }
    EXPECT_EQ(block_words, report.totals.words);
}

TEST(CostModel, TrapBlockIsToleranceBounded)
{
    Unit u = parseUnit(
        "movi #1, r1\n"
        "trap #3\n" // an exception may leave the block early
        "halt\n");
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph graph = buildCallGraph(cfg);
    CostReport report = computeCostModel(cfg, graph, "unit.s");
    bool saw_bounded = false;
    for (const BlockCost &b : report.blocks)
        if (!b.straight_line)
            saw_bounded = true;
    EXPECT_TRUE(saw_bounded);
}

TEST(CostModel, TextAndJsonRenderings)
{
    Unit u = smokeUnit();
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph graph = buildCallGraph(cfg);
    CostReport report = computeCostModel(cfg, graph, "unit.s");

    std::string text = costText(report);
    EXPECT_NE(text.find("static cycle-cost model"), std::string::npos)
        << text;
    EXPECT_NE(text.find("<entry>"), std::string::npos) << text;
    EXPECT_NE(text.find("totals:"), std::string::npos) << text;

    std::string json = costJson(report);
    EXPECT_NE(json.find("\"schema\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"functions\""), std::string::npos) << json;
    EXPECT_EQ(json.find("\"parity\""), std::string::npos) << json;

    CostParity parity;
    parity.checked = 3;
    parity.exact = 3;
    std::string with = costJson(report, &parity);
    EXPECT_NE(with.find("\"parity\""), std::string::npos) << with;
}

TEST(CostModel, DispatchBreakoutInTextAndJson)
{
    Unit u = parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #0, r3\n"
        "jtab (r2+r3), tab\n"
        "nop\n"
        "nop\n"
        "tab: .word t0\n"
        ".word t1\n"
        "t0: halt\n"
        "t1: halt\n");
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph graph = buildCallGraph(cfg);
    CostReport report = computeCostModel(cfg, graph, "unit.s");

    EXPECT_EQ(report.totals.dispatches, 1u);
    EXPECT_GT(report.totals.dispatch_words, 0u);

    std::string text = costText(report);
    EXPECT_NE(text.find("table dispatch:"), std::string::npos) << text;

    std::string json = costJson(report);
    EXPECT_NE(json.find("\"dispatches\": 1"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"dispatch_words\""), std::string::npos)
        << json;

    // The breakout line only appears when there is something to
    // break out — dispatch-free units keep the old text byte-for-byte.
    Unit s = smokeUnit();
    Cfg scfg = buildCfg(s, nullptr);
    CallGraph sgraph = buildCallGraph(scfg);
    CostReport plain = computeCostModel(scfg, sgraph, "unit.s");
    EXPECT_EQ(plain.totals.dispatches, 0u);
    EXPECT_EQ(costText(plain).find("table dispatch:"),
              std::string::npos);
}

TEST(CostParity, ExactAgreementAndViolationDetection)
{
    Unit u = smokeUnit();
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph graph = buildCallGraph(cfg);
    CostReport report = computeCostModel(cfg, graph, "unit.s");

    // Synthesize dynamic counts for "each block entered once".
    std::vector<uint64_t> counts(u.items.size(), 1);
    CostParity ok = checkCostParity(report, counts, 0.0);
    EXPECT_EQ(ok.checked, report.blocks.size());
    EXPECT_EQ(ok.violations, 0u)
        << (ok.notes.empty() ? "" : ok.notes[0]);

    // A word issuing more often than its block was entered breaks the
    // straight-line invariant and must be flagged.
    counts[3] += 1;
    CostParity bad = checkCostParity(report, counts, 0.0);
    EXPECT_GE(bad.violations, 1u);
    EXPECT_FALSE(bad.notes.empty());
}

// ----------------------------------------------- simulator oracle

TEST(CostParity, StaticModelMatchesSimulatorOverCorpus)
{
    std::vector<workload::CorpusProgram> programs = workload::corpus();
    for (const workload::CorpusProgram &p : workload::dispatchCorpus())
        programs.push_back(p);
    programs.push_back(workload::fibonacciProgram());
    programs.push_back(workload::puzzle0Program());
    programs.push_back(workload::puzzle1Program());

    pipeline::Session session;
    pipeline::ChainSpec spec;
    spec.simulate = true;
    spec.cost_model = true;
    pipeline::StageOptions options;
    options.sim.profile = true;
    std::vector<pipeline::ChainResult> results =
        pipeline::runAll(session, programs, spec, options, 4);

    ASSERT_EQ(results.size(), programs.size());
    for (const pipeline::ChainResult &r : results) {
        ASSERT_TRUE(r.ok()) << r.name << ": " << r.error;
        ASSERT_EQ(r.sim->stop, sim::StopReason::HALT) << r.name;
        ASSERT_NE(r.cost, nullptr) << r.name;
        CostParity parity = checkCostParity(
            r.cost->report, r.sim->exec_counts, 0.02);
        EXPECT_GT(parity.checked, 0u) << r.name;
        EXPECT_EQ(parity.exact, parity.checked) << r.name;
        EXPECT_EQ(parity.violations, 0u)
            << r.name << ": "
            << (parity.notes.empty() ? "" : parity.notes[0]);
    }
}

TEST(CostModel, SessionStageIsCached)
{
    pipeline::Session session;
    pipeline::StageOptions options;
    const std::string source = workload::fibonacciProgram().source;
    auto first = session.costModel(source, options);
    ASSERT_TRUE(first.ok()) << first.error().str();
    auto second = session.costModel(source, options);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value().get(), second.value().get());
    pipeline::PipelineStats stats = session.stats();
    size_t cost = static_cast<size_t>(pipeline::Stage::COST_MODEL);
    EXPECT_EQ(stats.stage[cost].misses, 1u);
    EXPECT_GE(stats.stage[cost].hits, 1u);
}

} // namespace
} // namespace mips::verify
