program bytecode;
const ncode = 17;
var code: array [0..16] of integer;
    arg: array [0..16] of integer;
    stack: array [0..7] of integer;
    globals: array [0..3] of integer;
    pc, sp, op, a: integer;
    running: boolean;
procedure emit(at, o, v: integer);
begin
  code[at] := o; arg[at] := v;
end;
begin
  { g0 := 1; g1 := 5; repeat g0 := g0*g1; g1 := g1-1 until g1 = 0;
    print g0 }
  emit(0, 1, 1);  emit(1, 6, 0);
  emit(2, 1, 5);  emit(3, 6, 1);
  emit(4, 5, 0);  emit(5, 5, 1);  emit(6, 4, 0);  emit(7, 6, 0);
  emit(8, 5, 1);  emit(9, 1, 1);  emit(10, 3, 0); emit(11, 6, 1);
  emit(12, 5, 1); emit(13, 7, 4);
  emit(14, 5, 0); emit(15, 8, 0);
  emit(16, 0, 0);
  pc := 0; sp := 0; running := true;
  while running do begin
    op := code[pc]; a := arg[pc]; pc := pc + 1;
    case op of
      0: running := false;
      1: begin stack[sp] := a; sp := sp + 1; end;
      2: begin sp := sp - 1;
           stack[sp - 1] := stack[sp - 1] + stack[sp]; end;
      3: begin sp := sp - 1;
           stack[sp - 1] := stack[sp - 1] - stack[sp]; end;
      4: begin sp := sp - 1;
           stack[sp - 1] := stack[sp - 1] * stack[sp]; end;
      5: begin stack[sp] := globals[a]; sp := sp + 1; end;
      6: begin sp := sp - 1; globals[a] := stack[sp]; end;
      7: begin sp := sp - 1;
           if stack[sp] <> 0 then pc := a; end;
      8: begin sp := sp - 1; writeint(stack[sp]); end;
      9: begin stack[sp] := stack[sp - 1]; sp := sp + 1; end
    end;
  end;
end.
