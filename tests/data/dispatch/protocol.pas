program protocol;
const nev = 60;
var state, i, ev, accepted, dropped, resets: integer;
begin
  state := 0; accepted := 0; dropped := 0; resets := 0;
  for i := 0 to nev - 1 do begin
    ev := (i * 3 + i div 4) mod 5;
    case state of
      0: if ev = 0 then state := 1
         else dropped := dropped + 1;
      1: case ev of
           0: state := 1;
           1: dropped := dropped + 1;
           2: state := 2;
           3: begin state := 0; resets := resets + 1; end;
           4: dropped := dropped + 1
         end;
      2: if ev < 3 then begin
           accepted := accepted + 1; state := 3;
         end else begin
           state := 0; resets := resets + 1;
         end;
      3: begin accepted := accepted + 1; state := 0; end
    end;
  end;
  writeint(state); writechar(' '); writeint(accepted);
  writechar(' '); writeint(dropped); writechar(' ');
  writeint(resets);
end.
