program scanner;
const len = 72;
var src: array [0..71] of char;
    i, idents, nums, ops, semis, spaces: integer;
    c: char;
begin
  for i := 0 to len - 1 do begin
    case i mod 6 of
      0, 1: src[i] := chr(ord('a') + (i mod 26));
      2: src[i] := chr(ord('0') + (i mod 10));
      3: src[i] := '+';
      4: src[i] := ';';
      5: src[i] := ' '
    end;
  end;
  idents := 0; nums := 0; ops := 0; semis := 0; spaces := 0;
  for i := 0 to len - 1 do begin
    c := src[i];
    case c of
      '+', '-', '*': ops := ops + 1;
      ';': semis := semis + 1;
      ' ': spaces := spaces + 1
    else begin
      if (c >= 'a') and (c <= 'z') then idents := idents + 1
      else nums := nums + 1;
    end
    end;
  end;
  writeint(idents); writechar(' '); writeint(nums); writechar(' ');
  writeint(ops); writechar(' '); writeint(semis); writechar(' ');
  writeint(spaces);
end.
