; fuzz reproducer fuzz-000-a (seed 8698554949407122477)
; failure: full: translation-validate: 0 error(s), 1 note(s) [injected: ReorgBugs.drop_branch_noop]
; fuzz-a-78b779a3baa0a42d (generated; seed 8698554949407122477)
  bra f4go
f4d0: .word 2942
  .word 45055
f4go:
  la f4d0, r7
  ld 0(r7), r2
  ld 1(r7), r3
  sra r2, #4, r4
  add r4, r3, r4
  st r4, @0x20008
  li #83, r4
  ldi #0xff000, r9
  st r4, (r9)
  halt
