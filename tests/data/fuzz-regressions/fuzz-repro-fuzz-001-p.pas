{ fuzz reproducer fuzz-001-p (seed 1752856235635652260)
  failure: word+jt: hazard-verify: 15 error(s) [injected: ReorgBugs.drop_load_noop] }
program fuzzp13988;
var a, b, c, d, e, t, fuel: integer;
    i, j, k: integer;
    buf: array [0..15] of integer;
    txt: array [0..15] of char;
    ptx: packed array [0..15] of char;
function f1(x: integer): integer;
var z: integer;
begin
  z := (x * 2 + 26) mod 97;
  if z < 0 then z := 0 - z;
  f1 := z;
end;
procedure p1(v: integer);
begin
  if v > 20 then t := t + (v mod 13)
  else t := t - (v mod 7);
end;
begin
  a := 59; b := 79; c := 28; d := 49; e := 8;
  t := 0; fuel := 0; j := 0; k := 0;
  for i := 0 to 15 do begin
    buf[i] := (i * 13) mod 100;
    txt[i] := chr(i mod 13 + 78);
    ptx[i] := chr(i mod 13 + 65);
  end;
  fuel := 7;
  repeat
    p1((84 + 83));
    fuel := fuel - 1;
  until fuel <= 0;
  t := t + f1(a);
  p1(b);
  for i := 0 to 15 do t := t + buf[i] + ord(txt[i]) + ord(ptx[i]);
  writeint(a); writechar(' ');
  writeint(b); writechar(' ');
  writeint(c); writechar(' ');
  writeint(d); writechar(' ');
  writeint(e); writechar(' ');
  writeint(t);
end.
