; Clean twin of abs_load_oob: the highest *valid* word address.
; No findings, no dynamic events.
        ld @0xFFFFF, r1
        nop
        halt
