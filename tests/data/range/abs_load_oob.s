; MS001 MUST + MS006: an absolute load past physical memory on the
; only path. Dynamically the load takes an ADDRESS_ERROR, re-enters at
; the vector (address 0 = this entry), and faults again — the oracle
; must see every event covered by the MS001 finding at this pc.
        ld @0x1FFFFF, r1
        nop
        halt
