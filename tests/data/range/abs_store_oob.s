; MS001 MUST (store): one word past the last physical word. The flag
; guard makes the post-fault re-entry (vector = entry) halt, so the
; simulator observes exactly one ADDRESS_ERROR event.
        ld @flag, r2
        nop
        bne r2, #0, done
        nop
        li #1, r3
        st r3, @flag
        st r3, @0x100000
        halt
done:
        halt
flag:
        .word 0
