; Clean twin of computed_oob_may: the same masked-index shape on a
; base far from the memory limit. [0x8000, 0x800F] is entirely valid,
; so the narrowed interval produces no finding and no event.
        ldi #0x8000, r4
        nop
        ld @offs, r5
        nop
        and r5, #15, r5
        ld (r4+r5), r6
        halt
offs:
        .word 12
