; MS001 MAY: base 0xFFFF8 plus a masked unknown index in [0, 15] —
; the address interval [0xFFFF8, 0x100007] straddles the end of
; physical memory, so the checker can warn but not prove. The data
; word makes the dynamic index 12, so the run does fault, and the
; oracle accepts the MAY finding as coverage.
        ld @flag, r2
        nop
        bne r2, #0, done
        nop
        li #1, r3
        st r3, @flag
        ldi #0xFFFF8, r4
        nop
        ld @offs, r5
        nop
        and r5, #15, r5
        ld (r4+r5), r6
        halt
done:
        halt
flag:
        .word 0
offs:
        .word 12
