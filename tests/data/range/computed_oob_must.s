; MS001 MUST through a computed (base+index) address: the base is a
; provable constant 0x100000 = one past physical memory. Flag-guarded
; so the run halts after one ADDRESS_ERROR.
        ld @flag, r2
        nop
        bne r2, #0, done
        nop
        li #1, r3
        st r3, @flag
        ldi #0xFFFFF, r4
        nop
        add r4, #1, r4          ; 0x100000: ldi tops out at 2^20-1
        ld (r4+r0), r5
        halt
done:
        halt
flag:
        .word 0
