; MS003 MUST: with mapping on at seg_bits 8 each segment is 2^15
; words, so address 40000 falls in the unmapped gap between the low
; and high segments. Dynamically every mapped fetch page-faults (no
; resident pages), which the oracle exempts — the ADDRESS_ERROR never
; surfaces, but the static finding stands.
        li #8, r1
        mts r1, segbits
        li #0x41, r2            ; priv | map_enable
        mts r2, sr
        ld @40000, r3
        nop
        halt
