; MS006: both sides of the branch end in a must-fault store, so every
; path from entry to an exit faults. Deliberately unguarded — a guard
; would create a clean exit and kill the MS006 proof. The simulator
; loops through the vector until the event cap; every ADDRESS_ERROR
; is covered by one of the MS001 findings.
        ld @sel, r1
        nop
        beq r1, #0, left
        nop
        st r1, @0x100001
        halt
left:
        st r1, @0x100002
        halt
sel:
        .word 0
