; MS004 MUST: with overflow traps enabled, INT32_MAX + 1 provably
; overflows. 0x7FFFFFFF is built by shift/or since ldi is limited to
; 21 signed bits. Flag-guarded: one OVERFLOW event, then the re-entry
; (traps cleared by the exception) halts cleanly.
        ld @flag, r2
        nop
        bne r2, #0, done
        nop
        li #1, r3
        st r3, @flag
        li #0x11, r1            ; priv | ovf_enable
        mts r1, sr
        ldi #0xFFFFF, r4
        nop
        sll r4, #11, r4         ; 0x7FFFF800
        ldi #0x7FF, r5
        nop
        or r4, r5, r4           ; 0x7FFFFFFF
        add r4, #1, r6
        halt
done:
        halt
flag:
        .word 0
