; MS004 MAY: base 0x7FFFFFF8 plus a masked unknown addend in [0, 15]
; — the sum interval straddles INT32_MAX, so overflow is possible but
; not provable. The data word makes the dynamic addend 12, which does
; overflow; the oracle accepts the MAY finding as coverage.
        ld @flag, r2
        nop
        bne r2, #0, done
        nop
        li #1, r3
        st r3, @flag
        li #0x11, r1            ; priv | ovf_enable
        mts r1, sr
        ldi #0xFFFFF, r4
        nop
        sll r4, #11, r4         ; 0x7FFFF800
        ldi #0x7F8, r5
        nop
        or r4, r5, r4           ; 0x7FFFFFF8
        ld @addend, r5
        nop
        and r5, #15, r5
        add r4, r5, r6
        halt
done:
        halt
flag:
        .word 0
addend:
        .word 12
