; MS005: a three-deep call chain where every callee pushes 8 words.
; Rollups: f3 = 8, f2 = 16, f1 = 24, so --stack-budget 16 flags f1.
; The entry initializes sp by a load-class write (ldi), which the
; analyzer reports as unknown own-depth — intentional: only the
; balanced callees get numeric rollups. No dynamic fault events.
        ldi #0x80000, r14
        nop
        call f1, r15
        nop
        halt
f1:
        sub r14, #8, r14
        st r15, 0(r14)
        call f2, r15
        nop
        ld 0(r14), r15
        nop
        add r14, #8, r14
        jmp (r15)
        nop
        nop
f2:
        sub r14, #8, r14
        st r15, 0(r14)
        call f3, r15
        nop
        ld 0(r14), r15
        nop
        add r14, #8, r14
        jmp (r15)
        nop
        nop
f3:
        sub r14, #8, r14
        st r15, 0(r14)
        ld 0(r14), r15
        nop
        add r14, #8, r14
        jmp (r15)
        nop
        nop
