; MS005 (unbounded): a self-recursive function. The static analysis
; cannot bound the depth, so any positive --stack-budget flags it as
; unbounded. Dynamically the counter stops the recursion at depth 10
; and the program halts with no fault events.
        ldi #0x80000, r14
        nop
        li #10, r2
        call rec, r15
        nop
        halt
rec:
        sub r14, #8, r14
        st r15, 0(r14)
        sub r2, #1, r2
        beq r2, #0, unwind
        nop
        call rec, r15
        nop
unwind:
        ld 0(r14), r15
        nop
        add r14, #8, r14
        jmp (r15)
        nop
        nop
