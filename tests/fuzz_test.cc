/**
 * @file
 * Fuzz subsystem tests: the generator's determinism contract (same
 * seed => byte-identical source, different seeds => distinct), batch
 * shape and chunk self-containment, a small-N differential run that
 * must come back clean, oracle sensitivity to every ReorgBugs fault
 * flag, and minimizer convergence — a planted reorganizer bug must
 * still trip the oracle after shrinking, and the shrunk program must
 * replay clean once the fault is removed.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "fuzz/differ.h"
#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "pipeline/session.h"

namespace {

using namespace mips;

// ---- determinism ----------------------------------------------------

TEST(FuzzGenerator, SameSeedIsByteIdentical)
{
    for (uint64_t seed : {1ull, 1982ull, 0xdeadbeefull}) {
        fuzz::GeneratedProgram a = fuzz::generatePascal(seed);
        fuzz::GeneratedProgram b = fuzz::generatePascal(seed);
        EXPECT_EQ(a.render(), b.render()) << "pascal seed " << seed;
        fuzz::GeneratedProgram c = fuzz::generateAsm(seed);
        fuzz::GeneratedProgram d = fuzz::generateAsm(seed);
        EXPECT_EQ(c.render(), d.render()) << "asm seed " << seed;
    }
}

TEST(FuzzGenerator, BatchIsDeterministicAsAWhole)
{
    std::vector<fuzz::GeneratedProgram> a = fuzz::generateBatch(42, 20);
    std::vector<fuzz::GeneratedProgram> b = fuzz::generateBatch(42, 20);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].render(), b[i].render());
    }
}

TEST(FuzzGenerator, DifferentSeedsProduceDistinctPrograms)
{
    std::set<std::string> sources;
    for (uint64_t seed = 1; seed <= 16; ++seed)
        sources.insert(fuzz::generatePascal(seed).render());
    for (uint64_t seed = 1; seed <= 16; ++seed)
        sources.insert(fuzz::generateAsm(seed).render());
    // 16 Pascal + 16 asm seeds: every one distinct.
    EXPECT_EQ(sources.size(), 32u);
}

TEST(FuzzGenerator, BatchMixesBothKinds)
{
    std::vector<fuzz::GeneratedProgram> batch =
        fuzz::generateBatch(1982, 40);
    size_t pascal = 0;
    size_t assembly = 0;
    for (const fuzz::GeneratedProgram &p : batch) {
        if (p.kind == fuzz::ProgramKind::PASCAL)
            ++pascal;
        else
            ++assembly;
        EXPECT_FALSE(p.chunks.empty()) << p.name;
    }
    EXPECT_GT(pascal, 0u);
    EXPECT_GT(assembly, 0u);
}

// ---- differential runs ---------------------------------------------

TEST(FuzzDiffer, SmallBatchRunsClean)
{
    pipeline::Session session;
    std::vector<fuzz::GeneratedProgram> batch =
        fuzz::generateBatch(1982, 8);
    for (const fuzz::GeneratedProgram &p : batch) {
        fuzz::DiffResult r = fuzz::runDifferential(session, p);
        EXPECT_TRUE(r.ok) << p.name << ": " << r.failure;
        EXPECT_FALSE(r.front_end_error) << p.name;
        EXPECT_GT(r.configs, 0u) << p.name;
    }
}

// Chunks are self-contained by generator contract: dropping any
// single chunk must still give a program that passes the whole
// matrix. This is what makes minimizer candidates meaningful.
TEST(FuzzDiffer, ChunksAreIndependentlyDroppable)
{
    pipeline::Session session;
    std::vector<fuzz::GeneratedProgram> batch =
        fuzz::generateBatch(7, 2);
    for (const fuzz::GeneratedProgram &p : batch) {
        for (size_t drop = 0; drop < p.chunks.size(); ++drop) {
            fuzz::GeneratedProgram candidate = p;
            candidate.chunks.erase(candidate.chunks.begin() +
                                   static_cast<ptrdiff_t>(drop));
            fuzz::DiffResult r =
                fuzz::runDifferential(session, candidate);
            EXPECT_TRUE(r.ok) << p.name << " minus chunk " << drop
                              << ": " << r.failure;
        }
    }
}

// Every fault-injection flag must be observable: some program in a
// small batch has to trip at least one oracle under each bug.
TEST(FuzzDiffer, EveryInjectedBugIsCaught)
{
    pipeline::Session session;
    std::vector<fuzz::GeneratedProgram> batch =
        fuzz::generateBatch(1982, 10);

    struct Case { const char *name; reorg::ReorgBugs bugs; };
    std::vector<Case> cases;
    auto add = [&](const char *name, auto set) {
        Case c;
        c.name = name;
        set(c.bugs);
        cases.push_back(c);
    };
    add("pack_dependent",
        [](reorg::ReorgBugs &b) { b.pack_dependent = true; });
    add("hoist_blind",
        [](reorg::ReorgBugs &b) { b.hoist_blind = true; });
    add("alias_blind",
        [](reorg::ReorgBugs &b) { b.alias_blind = true; });
    add("slot_overwritten_def",
        [](reorg::ReorgBugs &b) { b.slot_overwritten_def = true; });
    add("drop_load_noop",
        [](reorg::ReorgBugs &b) { b.drop_load_noop = true; });
    add("drop_branch_noop",
        [](reorg::ReorgBugs &b) { b.drop_branch_noop = true; });
    add("retarget_same_target",
        [](reorg::ReorgBugs &b) { b.retarget_same_target = true; });
    add("dup_skip_second",
        [](reorg::ReorgBugs &b) { b.dup_skip_second = true; });

    for (const Case &c : cases) {
        fuzz::DiffOptions options;
        options.bugs = c.bugs;
        bool caught = false;
        for (const fuzz::GeneratedProgram &p : batch) {
            if (fuzz::runDifferential(session, p, options).mismatch()) {
                caught = true;
                break;
            }
        }
        EXPECT_TRUE(caught) << "bug " << c.name
                            << " escaped every oracle";
    }
}

// ---- minimizer ------------------------------------------------------

TEST(FuzzMinimizer, ConvergesOnInjectedBugAndStillTripsOracle)
{
    pipeline::Session session;
    // fuzz-001-p under drop_load_noop: hazard-verify catches it (the
    // scheduler deleted load-delay covers), and the program shrinks
    // to a single chunk.
    std::vector<fuzz::GeneratedProgram> batch =
        fuzz::generateBatch(1982, 2);
    const fuzz::GeneratedProgram &program = batch[1];
    ASSERT_EQ(program.kind, fuzz::ProgramKind::PASCAL);

    fuzz::DiffOptions buggy;
    buggy.bugs.drop_load_noop = true;
    auto still_fails = [&](const fuzz::GeneratedProgram &candidate) {
        return fuzz::runDifferential(session, candidate, buggy)
            .mismatch();
    };
    ASSERT_TRUE(still_fails(program));

    fuzz::MinimizeOutcome outcome =
        fuzz::minimizeProgram(program, still_fails);
    EXPECT_LT(outcome.program.chunks.size(), program.chunks.size());
    EXPECT_EQ(outcome.removed,
              program.chunks.size() - outcome.program.chunks.size());
    EXPECT_GE(outcome.steps, 2u);
    // The shrunk program still trips the oracle with the bug in...
    EXPECT_TRUE(still_fails(outcome.program));
    // ...and replays clean without it (the check-in contract for
    // tests/data/fuzz-regressions/).
    fuzz::DiffResult clean =
        fuzz::runDifferential(session, outcome.program);
    EXPECT_TRUE(clean.ok) << clean.failure;
}

TEST(FuzzMinimizer, NonFailingInputReturnsUnchanged)
{
    fuzz::GeneratedProgram program = fuzz::generateAsm(5);
    fuzz::MinimizeOutcome outcome = fuzz::minimizeProgram(
        program,
        [](const fuzz::GeneratedProgram &) { return false; });
    EXPECT_EQ(outcome.program.render(), program.render());
    EXPECT_EQ(outcome.removed, 0u);
    EXPECT_EQ(outcome.steps, 1u);
}

} // namespace
