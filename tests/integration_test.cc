/**
 * @file
 * Whole-toolchain property tests: randomly generated Pascal-like
 * programs are compiled under both data layouts, reorganized under
 * randomized option sets, and executed on both machines. All four
 * executions must print identical output — exercising the compiler,
 * peephole, reorganizer, assembler, linker, and both simulators
 * against each other.
 */
#include <gtest/gtest.h>

#include "plc/driver.h"
#include "sim/machine.h"
#include "support/rng.h"
#include "verify/tv.h"
#include "verify/verify.h"

namespace mips {
namespace {

using support::Rng;
using support::strprintf;

/** Generator of random, terminating mini-Pascal programs. */
class ProgramGen
{
  public:
    explicit ProgramGen(uint64_t seed) : rng_(seed) {}

    std::string
    run()
    {
        src_ = "program fuzz;\n";
        src_ += "var a, b, c, d, e: integer;\n";
        src_ += "    buf: array [0..15] of integer;\n";
        src_ += "    txt: array [0..15] of char;\n";
        src_ += "    ptx: packed array [0..15] of char;\n";
        src_ += "    i, j, k, t: integer;\n";
        src_ += "begin\n";
        // Deterministic seeds.
        for (const char *v : {"a", "b", "c", "d", "e"}) {
            src_ += strprintf("  %s := %d;\n", v,
                              static_cast<int>(rng_.below(100)));
        }
        src_ += "  for i := 0 to 15 do begin\n";
        src_ += strprintf("    buf[i] := i * %d;\n",
                          static_cast<int>(rng_.below(9)) + 1);
        src_ += "    txt[i] := chr(65 + (i mod 26));\n";
        src_ += "    ptx[i] := chr(97 + (i mod 26));\n";
        src_ += "  end;\n";

        int stmts = 4 + static_cast<int>(rng_.below(8));
        for (int s = 0; s < stmts; ++s)
            genStmt(1);

        // Print everything observable.
        for (const char *v : {"a", "b", "c", "d", "e", "t"}) {
            src_ += strprintf("  writeint(%s); writechar(' ');\n", v);
        }
        src_ += "  t := 0;\n";
        src_ += "  for i := 0 to 15 do t := t + buf[i] + ord(txt[i]) "
                "+ ord(ptx[i]);\n";
        src_ += "  writeint(t);\n";
        src_ += "end.\n";
        return src_;
    }

  private:
    const char *
    var()
    {
        static const char *const kVars[] = {"a", "b", "c", "d", "e"};
        return kVars[rng_.below(5)];
    }

    /** A small integer expression (guaranteed in-range). */
    std::string
    expr(int depth)
    {
        if (depth >= 3 || rng_.chance(0.4)) {
            if (rng_.chance(0.5))
                return var();
            return strprintf("%d", static_cast<int>(rng_.below(50)));
        }
        switch (rng_.below(5)) {
          case 0:
            return "(" + expr(depth + 1) + " + " + expr(depth + 1) +
                   ")";
          case 1:
            return "(" + expr(depth + 1) + " - " + expr(depth + 1) +
                   ")";
          case 2:
            return "(" + expr(depth + 1) + " * " +
                   strprintf("%d", static_cast<int>(rng_.below(5))) +
                   ")";
          case 3:
            return "(" + expr(depth + 1) + " div " +
                   strprintf("%d",
                             static_cast<int>(rng_.below(6)) + 1) +
                   ")";
          default:
            return "(" + expr(depth + 1) + " mod " +
                   strprintf("%d",
                             static_cast<int>(rng_.below(6)) + 2) +
                   ")";
        }
    }

    std::string
    cond()
    {
        static const char *const kRels[] = {"=", "<>", "<", "<=", ">",
                                            ">="};
        std::string leaf1 = std::string(var()) + " " +
                            kRels[rng_.below(6)] + " " + expr(2);
        if (rng_.chance(0.5))
            return leaf1;
        std::string leaf2 = std::string(var()) + " " +
                            kRels[rng_.below(6)] + " " + expr(2);
        const char *op = rng_.chance(0.5) ? "or" : "and";
        return "(" + leaf1 + ") " + op + " (" + leaf2 + ")";
    }

    void
    genStmt(int depth)
    {
        switch (rng_.below(depth >= 3 ? 3 : 6)) {
          case 0:
            src_ += strprintf("  %s := %s;\n", var(),
                              expr(1).c_str());
            break;
          case 1:
            // `x mod 8 + 8` lands in 1..15 even for negative x
            // (Pascal mod truncates toward zero).
            src_ += strprintf("  buf[(%s) mod 8 + 8] := %s;\n",
                              expr(2).c_str(), expr(1).c_str());
            break;
          case 2: {
            // Character traffic through both array flavours.
            const char *arr = rng_.chance(0.5) ? "txt" : "ptx";
            src_ += strprintf(
                "  %s[(%s) mod 8 + 8] := chr(65 + ((%s) mod 26));\n",
                arr, expr(2).c_str(), expr(2).c_str());
            break;
          }
          case 3: {
            src_ += strprintf("  if %s then begin\n", cond().c_str());
            genStmt(depth + 1);
            if (rng_.chance(0.5)) {
                src_ += "  end else begin\n";
                genStmt(depth + 1);
            }
            src_ += "  end;\n";
            break;
          }
          case 4: {
            // One loop variable per nesting depth: a nested `for`
            // reusing its parent's variable never terminates.
            static const char *const kLoopVars[] = {"i", "j", "k"};
            const char *lv = kLoopVars[std::min(depth - 1, 2)];
            int lo = static_cast<int>(rng_.below(4));
            int hi = lo + static_cast<int>(rng_.below(8));
            src_ += strprintf("  for %s := %d to %d do begin\n", lv,
                              lo, hi);
            genStmt(depth + 1);
            src_ += "  end;\n";
            break;
          }
          default: {
            src_ += strprintf("  t := t + %s;\n", expr(1).c_str());
            break;
          }
        }
    }

    Rng rng_;
    std::string src_;
};

/** Compile under (layout, reorg options) and run on the pipeline. */
std::string
runVariant(const std::string &source, plc::Layout layout,
           const reorg::ReorgOptions &ropts, const char *tag)
{
    plc::CompileOptions copts;
    copts.layout = layout;
    auto exe = plc::buildExecutable(source, copts, ropts);
    EXPECT_TRUE(exe.ok()) << tag << ": "
                          << (exe.ok() ? "" : exe.error().str())
                          << "\n" << source;
    if (!exe.ok())
        return "<compile error>";

    // Static oracle: every pipeline-bound image must pass the verifier
    // before it runs.
    verify::VerifyReport vr = verify::verifyReorganization(
        exe.value().legal_unit, exe.value().final_unit);
    EXPECT_TRUE(vr.clean())
        << tag << ": static verification failed:\n"
        << verify::reportText(vr, exe.value().final_unit, tag);

    // Second static oracle: the translation validator must prove the
    // reorganized unit equivalent (no errors, no unproven regions).
    verify::TvOptions tvopts;
    tvopts.alias = ropts.alias;
    verify::VerifyReport tv = verify::validateTranslation(
        exe.value().legal_unit, exe.value().final_unit,
        exe.value().tv_hints, tvopts);
    EXPECT_TRUE(tv.clean() && tv.notes == 0)
        << tag << ": translation validation failed:\n"
        << verify::reportText(tv, exe.value().final_unit, tag);

    sim::Machine machine;
    machine.load(exe.value().program);
    EXPECT_EQ(machine.cpu().run(100'000'000), sim::StopReason::HALT)
        << tag << ": " << machine.cpu().errorMessage();
    return machine.memory().consoleOutput();
}

TEST(Fuzz, RandomProgramsAgreeAcrossLayoutsAndMachines)
{
    Rng meta(0xf00dULL);
    for (int trial = 0; trial < 25; ++trial) {
        ProgramGen gen(meta.next());
        std::string source = gen.run();
        std::string tag = strprintf("trial %d", trial);

        // Oracle: legal code on the interlocked machine.
        plc::CompileOptions copts;
        auto exe = plc::buildExecutable(source, copts);
        ASSERT_TRUE(exe.ok()) << tag << ": " << exe.error().str()
                              << "\n" << source;
        auto legal = assembler::link(exe.value().legal_unit);
        ASSERT_TRUE(legal.ok()) << tag;
        sim::FunctionalRun oracle = sim::runFunctional(legal.value(),
                                                       100'000'000);
        ASSERT_EQ(oracle.reason, sim::StopReason::HALT)
            << tag << ": " << oracle.cpu->errorMessage();
        std::string expected = oracle.memory->consoleOutput();
        ASSERT_FALSE(expected.empty()) << tag;

        // Pipeline, word layout, randomized reorganizer options.
        reorg::ReorgOptions ropts;
        ropts.reorder = meta.chance(0.8);
        ropts.pack = meta.chance(0.8);
        ropts.fill_delay = meta.chance(0.8);
        EXPECT_EQ(runVariant(source, plc::Layout::WORD_ALLOCATED,
                             ropts, tag.c_str()),
                  expected)
            << tag << "\n" << source;

        // Pipeline, byte layout, full reorganizer.
        EXPECT_EQ(runVariant(source, plc::Layout::BYTE_ALLOCATED,
                             reorg::ReorgOptions{}, tag.c_str()),
                  expected)
            << tag << "\n" << source;
    }
}

TEST(Fuzz, EncodedImagesRoundTripThroughDecoder)
{
    // Every word of a compiled image must decode back to the linked
    // instruction (data words excepted).
    ProgramGen gen(42);
    auto exe = plc::buildExecutable(gen.run());
    ASSERT_TRUE(exe.ok());
    const assembler::Program &prog = exe.value().program;
    for (size_t i = 0; i < prog.image.size(); ++i) {
        auto decoded = isa::decode(prog.image[i]);
        if (decoded.ok()) {
            EXPECT_EQ(isa::encode(decoded.value()), prog.image[i]);
        }
    }
}

} // namespace
} // namespace mips
