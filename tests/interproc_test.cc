/**
 * @file
 * Interprocedural analyzer tests: call-graph construction (function
 * partition, site resolution, secondary entries, recursion), one
 * golden test per calling-convention code with a clean twin showing
 * the fixed program verifies silent, dot/JSON rendering, and the
 * whole-corpus zero-false-positive sweep over reorganizer output.
 */
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "plc/driver.h"
#include "verify/interproc.h"
#include "verify/verify.h"
#include "workload/corpus.h"

namespace mips::verify {
namespace {

using assembler::Unit;

Unit
parseUnit(std::string_view src)
{
    auto unit = assembler::parse(src);
    EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().str());
    return unit.take();
}

std::string
dump(const VerifyReport &report, const Unit &unit)
{
    return reportText(report, unit, "test");
}

size_t
funcNamed(const CallGraph &g, const std::string &name)
{
    for (size_t i = 0; i < g.functions.size(); ++i)
        if (g.functions[i].name == name)
            return i;
    return kNoFunc;
}

// ------------------------------------------------------- call graph

TEST(CallGraph, DirectCallPartitionsAndResolves)
{
    Unit u = parseUnit(
        "call f, r15\n"     // 0
        "nop\n"             // 1: slot
        "halt\n"            // 2: resume
        "f: movi #1, r1\n"  // 3
        "jmp (r15)\n"       // 4
        "nop\n");           // 5
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph g = buildCallGraph(cfg);
    ASSERT_EQ(g.size(), 2u);
    EXPECT_TRUE(g.functions[0].is_root);
    size_t f = funcNamed(g, "f");
    ASSERT_NE(f, kNoFunc);
    EXPECT_EQ(g.functions[f].begin, 3u);
    EXPECT_EQ(g.functions[f].end, 6u);
    EXPECT_TRUE(g.functions[f].reachable);
    EXPECT_EQ(g.functions[f].returns, (std::vector<size_t>{4}));
    ASSERT_EQ(g.sites.size(), 1u);
    EXPECT_EQ(g.sites[0].item, 0u);
    EXPECT_EQ(g.sites[0].caller, 0u);
    EXPECT_EQ(g.sites[0].callee, f);
    EXPECT_EQ(g.sites[0].entered, 3u);
    EXPECT_FALSE(g.sites[0].indirect);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_EQ(g.function_of[i], 0u);
    for (size_t i = 3; i < 6; ++i)
        EXPECT_EQ(g.function_of[i], f);
}

TEST(CallGraph, IndirectCallResolvedThroughConstantDef)
{
    Unit u = parseUnit(
        "ldi #0, r1\n"      // 0: patched below to carry target f
        "call (r1), r15\n"  // 1
        "nop\n"             // 2: slot
        "nop\n"             // 3: slot (indirect delay is 2)
        "halt\n"            // 4
        "f: jmp (r15)\n"    // 5
        "nop\n");           // 6
    u.items[0].target = "f"; // as the code generator emits it
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph g = buildCallGraph(cfg);
    size_t f = funcNamed(g, "f");
    ASSERT_NE(f, kNoFunc);
    ASSERT_EQ(g.sites.size(), 1u);
    EXPECT_TRUE(g.sites[0].indirect);
    EXPECT_TRUE(g.sites[0].resolved());
    EXPECT_EQ(g.sites[0].callee, f);
    EXPECT_TRUE(g.functions[f].reachable);
}

TEST(CallGraph, SelfRecursionDetected)
{
    Unit u = parseUnit(
        "f: call f, r15\n" // 0
        "nop\n"            // 1
        "jmp (r15)\n"      // 2
        "nop\n");          // 3
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph g = buildCallGraph(cfg);
    ASSERT_EQ(g.size(), 1u);
    EXPECT_TRUE(g.functions[0].recursive);
    ASSERT_EQ(g.sites.size(), 1u);
    EXPECT_EQ(g.sites[0].callee, 0u);
}

TEST(CallGraph, FallenIntoTargetBecomesSecondaryEntry)
{
    // The reorganizer's call retargeting makes labels that are both
    // call targets and fall-through successors; such a label must not
    // split the region (that would sever the prologue) but become a
    // secondary entry of the containing function.
    Unit u = parseUnit(
        "call m, r15\n"      // 0
        "nop\n"              // 1
        "halt\n"             // 2
        "f: movi #1, r1\n"   // 3: predless label starts the region
        "m: st r1, 0(r14)\n" // 4: call target, fallen into from 3
        "jmp (r15)\n"        // 5
        "nop\n");            // 6
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph g = buildCallGraph(cfg);
    ASSERT_EQ(g.size(), 2u);
    size_t f = funcNamed(g, "f");
    ASSERT_NE(f, kNoFunc);
    EXPECT_EQ(g.functions[f].begin, 3u);
    EXPECT_EQ(g.functions[f].end, 7u);
    EXPECT_EQ(g.functions[f].entries, (std::vector<size_t>{3, 4}));
    ASSERT_EQ(g.sites.size(), 1u);
    EXPECT_EQ(g.sites[0].callee, f);
    EXPECT_EQ(g.sites[0].entered, 4u);
}

TEST(CallGraph, DotRenderingListsFunctionsAndEdges)
{
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: jmp (r15)\n"
        "nop\n");
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph g = buildCallGraph(cfg);
    std::string dot = callGraphDot(g, "unit.s");
    EXPECT_NE(dot.find("digraph"), std::string::npos) << dot;
    EXPECT_NE(dot.find("\"f\""), std::string::npos) << dot;
    EXPECT_NE(dot.find("->"), std::string::npos) << dot;
}

TEST(CallGraph, DotRendersTableDispatchEdgesDashed)
{
    // A dispatch whose table is recovered draws a dashed edge per
    // distinct target function, styled apart from call edges.
    Unit u = parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #0, r3\n"
        "jtab (r2+r3), tab\n"
        "nop\n"
        "nop\n"
        "tab: .word t0\n"
        ".word t1\n"
        "t0: halt\n"
        "t1: halt\n");
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph g = buildCallGraph(cfg);
    std::string dot = callGraphDot(g, "unit.s");
    EXPECT_NE(dot.find("style=dashed, label=\"table\""),
              std::string::npos)
        << dot;
    EXPECT_EQ(dot.find("\"?\""), std::string::npos) << dot;
}

TEST(CallGraph, DotRendersUnrecoveredTableAsUnknown)
{
    // No table label: the dispatch cannot be recovered, so the edge
    // points at the dotted "?" node instead of silently vanishing.
    Unit u = parseUnit(
        "jtab (r2+r3)\n"
        "nop\n"
        "nop\n"
        "halt\n");
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph g = buildCallGraph(cfg);
    std::string dot = callGraphDot(g, "unit.s");
    EXPECT_NE(dot.find("-> \"?\" [style=dashed, label=\"table\"]"),
              std::string::npos)
        << dot;
    EXPECT_NE(dot.find("\"?\" [shape=ellipse, style=dotted]"),
              std::string::npos)
        << dot;
}

// ------------------------------------------- golden diagnostics

TEST(Golden, Cc001CalleeSavedClobbered)
{
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: movi #7, r5\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyOptions options;
    options.callee_saved = 1u << 5;
    VerifyReport report = verifyUnit(u, options);
    ASSERT_EQ(report.countOf(Code::CC001), 1u) << dump(report, u);
    const Diagnostic &d = report.diagnostics.front();
    EXPECT_EQ(report.diagnostics.front().severity, Severity::ERROR);
    EXPECT_NE(d.message.find("r5"), std::string::npos) << d.message;
    // The repo convention is caller-save: the default checks nothing.
    EXPECT_EQ(verifyUnit(u).countOf(Code::CC001), 0u);
}

TEST(Golden, Cc001SaveRestoreIsClean)
{
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: st r5, 0(r14)\n"
        "movi #7, r5\n"
        "ld 0(r14), r5\n" // the restore idiom clears the dirty bit
        "jmp (r15)\n"
        "nop\n");
    VerifyOptions options;
    options.callee_saved = 1u << 5;
    VerifyReport report = verifyUnit(u, options);
    EXPECT_EQ(report.countOf(Code::CC001), 0u) << dump(report, u);
}

TEST(Golden, Cc001IdentityMovePreservesRegister)
{
    // The reorganizer packs `add rX, #0, rX` self-moves; the write
    // provably carries the register's own value and must not count
    // as a clobber.
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: add r5, #0, r5\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyOptions options;
    options.callee_saved = 1u << 5;
    VerifyReport report = verifyUnit(u, options);
    EXPECT_EQ(report.countOf(Code::CC001), 0u) << dump(report, u);
}

TEST(Golden, Cc002ReturnAddressOverwritten)
{
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: call g, r15\n" // nested call clobbers the link register
        "nop\n"
        "jmp (r15)\n"      // returns through the overwritten link
        "nop\n"
        "nop\n"            // indirect jumps shadow two words
        "g: jmp (r15)\n"
        "nop\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::CC002), 1u) << dump(report, u);
    const Diagnostic *d = nullptr;
    for (const Diagnostic &x : report.diagnostics)
        if (x.code == Code::CC002)
            d = &x;
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_NE(d->message.find("'f'"), std::string::npos) << d->message;
}

TEST(Golden, Cc002SaveRestoreIsClean)
{
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: st r15, 0(r14)\n"
        "call g, r15\n"
        "nop\n"
        "ld 0(r14), r15\n"
        "nop\n"            // the reloaded link needs its load delay
        "jmp (r15)\n"
        "nop\n"
        "nop\n"
        "g: jmp (r15)\n"
        "nop\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::CC002), 0u) << dump(report, u);
}

TEST(Golden, Cc003UnbalancedStackAdjustment)
{
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: sub r14, #2, r14\n" // allocates a frame...
        "jmp (r15)\n"           // ...and returns without freeing it
        "nop\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::CC003), 1u) << dump(report, u);
    const Diagnostic *d = nullptr;
    for (const Diagnostic &x : report.diagnostics)
        if (x.code == Code::CC003)
            d = &x;
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_NE(d->message.find("stack"), std::string::npos) << d->message;
}

TEST(Golden, Cc003BalancedFrameIsClean)
{
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: sub r14, #2, r14\n"
        "add r14, #2, r14\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::CC003), 0u) << dump(report, u);
}

TEST(Golden, Cc003UntrackedStackWriteStaysSilent)
{
    // The frame is never freed, but the final stack-pointer write
    // copies from another register — an untracked write poisons the
    // delta lattice (Delta::GIVEUP) and the check must stay silent
    // rather than guess at the net adjustment.
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: sub r14, #2, r14\n"
        "add r9, #0, r14\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::CC003), 0u) << dump(report, u);
}

TEST(Golden, Cc003UnknownAdjustAmountStaysSilent)
{
    // sp-relative adjustment by a register with no constant reaching
    // definition: also Delta::GIVEUP, also silent — even though the
    // frame provably is not freed by a matching add.
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: sub r14, r9, r14\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::CC003), 0u) << dump(report, u);
}

TEST(Golden, Cc003RetargetedCallShiftsResumeDelta)
{
    // A call into a secondary entry skips the callee's one-word
    // prologue; the caller performs that adjustment in the delay slot.
    // The resume edge must shift the caller's delta by the callee's
    // provable net effect from that entry (ResumeFix::SHIFT, here
    // +2): with the shift the caller balances; without it this would
    // be a false CC003 at c's return.
    Unit u = parseUnit(
        "call c, r15\n"          // 0
        "nop\n"                  // 1
        "halt\n"                 // 2
        "c: st r15, 4(r14)\n"    // 3: save the link above the frame
        "call f2, r15\n"         // 4: enters past f's prologue
        "sub r14, #2, r14\n"     // 5: slot performs the skipped sub
        "ld 4(r14), r15\n"       // 6: resume, sp balanced again
        "nop\n"                  // 7
        "jmp (r15)\n"            // 8
        "nop\n"                  // 9
        "nop\n"                  // 10
        "f: sub r14, #2, r14\n"  // 11: prologue (skipped by the call)
        "f2: st r15, 0(r14)\n"   // 12: secondary entry
        "ld 0(r14), r15\n"       // 13
        "nop\n"                  // 14
        "add r14, #2, r14\n"     // 15
        "jmp (r15)\n"            // 16
        "nop\n"                  // 17
        "nop\n");                // 18
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph g = buildCallGraph(cfg);
    size_t f = funcNamed(g, "f");
    ASSERT_NE(f, kNoFunc);
    EXPECT_EQ(g.functions[f].entries, (std::vector<size_t>{11, 12}));
    bool retargeted = false;
    for (const CallSite &s : g.sites)
        if (s.resolved() && s.callee == f && s.entered == 12)
            retargeted = true;
    EXPECT_TRUE(retargeted);
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::CC003), 0u) << dump(report, u);
}

TEST(Golden, Cc004ArgumentRegisterUndefinedAtSite)
{
    Unit u = parseUnit(
        "call f, r15\n"       // no definition of r10 reaches this
        "nop\n"
        "halt\n"
        "f: add r10, #1, r1\n" // entry read of the argument register
        "st r1, 0(r14)\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::CC004), 1u) << dump(report, u);
    const Diagnostic *d = nullptr;
    for (const Diagnostic &x : report.diagnostics)
        if (x.code == Code::CC004)
            d = &x;
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::WARNING);
    EXPECT_EQ(d->item_index, 0u);
    EXPECT_NE(d->message.find("r10"), std::string::npos) << d->message;
}

TEST(Golden, Cc004SuppliedArgumentIsClean)
{
    Unit u = parseUnit(
        "movi #5, r10\n"
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: add r10, #1, r1\n"
        "st r1, 0(r14)\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::CC004), 0u) << dump(report, u);
}

TEST(Golden, Lt004InterprocedurallyDeadFunction)
{
    Unit u = parseUnit(
        "halt\n"
        "dead: movi #1, r1\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::LT004), 1u) << dump(report, u);
    const Diagnostic *d = nullptr;
    for (const Diagnostic &x : report.diagnostics)
        if (x.code == Code::LT004)
            d = &x;
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::WARNING);
    EXPECT_EQ(d->item_index, 1u);
    EXPECT_NE(d->message.find("dead"), std::string::npos) << d->message;
}

TEST(Golden, Lt004CalledFunctionIsLive)
{
    Unit u = parseUnit(
        "call dead, r15\n"
        "nop\n"
        "halt\n"
        "dead: movi #1, r1\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::LT004), 0u) << dump(report, u);
}

TEST(Golden, InterprocOptOutSilencesEverything)
{
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: sub r14, #2, r14\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyOptions options;
    options.interproc = false;
    VerifyReport report = verifyUnit(u, options);
    EXPECT_EQ(report.countOf(Code::CC003), 0u) << dump(report, u);
}

// ------------------------------------------------------- rendering

TEST(Render, JsonCarriesCallingConventionFinding)
{
    Unit u = parseUnit(
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: sub r14, #2, r14\n"
        "jmp (r15)\n"
        "nop\n");
    VerifyReport report = verifyUnit(u);
    std::string json = reportJson(report, "unit.s");
    EXPECT_NE(json.find("\"schema\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"code\": \"CC003\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"summary\": {"), std::string::npos) << json;
    EXPECT_NE(json.find("\"CC003\": 1"), std::string::npos) << json;
}

// ------------------------------------------- reorganizer as oracle

TEST(Oracle, CorpusHasNoCallingConventionErrors)
{
    std::vector<workload::CorpusProgram> programs = workload::corpus();
    programs.push_back(workload::fibonacciProgram());
    programs.push_back(workload::puzzle0Program());
    programs.push_back(workload::puzzle1Program());
    for (const auto &program : programs) {
        auto exe = plc::buildExecutable(program.source);
        ASSERT_TRUE(exe.ok()) << program.name;
        VerifyReport report = verifyReorganization(
            exe.value().legal_unit, exe.value().final_unit);
        EXPECT_TRUE(report.clean())
            << program.name << ":\n"
            << dump(report, exe.value().final_unit);
        EXPECT_EQ(report.countOf(Code::CC001), 0u) << program.name;
        EXPECT_EQ(report.countOf(Code::CC002), 0u) << program.name;
        EXPECT_EQ(report.countOf(Code::CC003), 0u) << program.name;
        EXPECT_EQ(report.countOf(Code::CC004), 0u) << program.name;
        // LT004 is allowed: linked-but-unused runtime helpers
        // ($mul/$div/$mod) are genuinely dead code.
        for (const Diagnostic &d : report.diagnostics) {
            if (d.code == Code::LT004) {
                EXPECT_NE(d.message.find("$"), std::string::npos)
                    << program.name << ": " << d.message;
            }
        }
    }
}

} // namespace
} // namespace mips::verify
