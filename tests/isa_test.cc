/**
 * @file
 * Unit and property tests for the ISA: comparison semantics, ALU
 * semantics (including byte insert/extract and overflow detection),
 * addressing, register-use analysis, and encode/decode round trips.
 */
#include <gtest/gtest.h>

#include "isa/cond.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "isa/instruction.h"
#include "support/rng.h"

namespace mips::isa {
namespace {

// ---------------------------------------------------------------- Cond

TEST(Cond, SignedVsUnsigned)
{
    uint32_t minus1 = 0xffffffff;
    EXPECT_TRUE(evalCond(Cond::LT, minus1, 0));   // -1 < 0 signed
    EXPECT_FALSE(evalCond(Cond::LTU, minus1, 0)); // huge unsigned
    EXPECT_TRUE(evalCond(Cond::GTU, minus1, 0));
    EXPECT_TRUE(evalCond(Cond::GE, 0, minus1));
}

TEST(Cond, UnaryTests)
{
    EXPECT_TRUE(evalCond(Cond::MI, 0x80000000, 0));
    EXPECT_FALSE(evalCond(Cond::MI, 1, 0));
    EXPECT_TRUE(evalCond(Cond::PL, 0, 99));
    EXPECT_TRUE(evalCond(Cond::EVN, 4, 0));
    EXPECT_TRUE(evalCond(Cond::ODD, 5, 0));
}

/** Property: negateCond is an involution and complements the result. */
TEST(Cond, NegateIsComplementProperty)
{
    support::Rng rng(42);
    for (int c = 0; c < kNumConds; ++c) {
        Cond cond = static_cast<Cond>(c);
        EXPECT_EQ(negateCond(negateCond(cond)), cond);
        for (int i = 0; i < 200; ++i) {
            uint32_t a = static_cast<uint32_t>(rng.next());
            uint32_t b = static_cast<uint32_t>(rng.next());
            EXPECT_NE(evalCond(cond, a, b),
                      evalCond(negateCond(cond), a, b));
        }
    }
}

/** Property: swapCond commutes the operands. */
TEST(Cond, SwapSwapsOperandsProperty)
{
    support::Rng rng(43);
    for (int c = 0; c < kNumConds; ++c) {
        Cond cond = static_cast<Cond>(c);
        // The unary tests inspect only operand a, so swapping is only
        // meaningful for genuinely binary relations.
        if (cond == Cond::MI || cond == Cond::PL || cond == Cond::EVN ||
            cond == Cond::ODD) {
            continue;
        }
        for (int i = 0; i < 200; ++i) {
            uint32_t a = static_cast<uint32_t>(rng.next());
            uint32_t b = static_cast<uint32_t>(rng.next());
            EXPECT_EQ(evalCond(cond, a, b),
                      evalCond(swapCond(cond), b, a));
        }
    }
}

TEST(Cond, NamesRoundTrip)
{
    for (int c = 0; c < kNumConds; ++c) {
        Cond cond = static_cast<Cond>(c), parsed;
        ASSERT_TRUE(parseCond(condName(cond), &parsed));
        EXPECT_EQ(parsed, cond);
    }
    Cond dummy;
    EXPECT_FALSE(parseCond("bogus", &dummy));
}

// ----------------------------------------------------------------- ALU

AluOutputs
run(AluOp op, uint32_t rs, uint32_t src2, uint32_t rd_old = 0,
    uint32_t lo = 0)
{
    AluPiece p;
    p.op = op;
    AluInputs in{rs, src2, rd_old, lo};
    return evalAlu(p, in);
}

TEST(Alu, Arithmetic)
{
    EXPECT_EQ(run(AluOp::ADD, 2, 3).rd, 5u);
    EXPECT_EQ(run(AluOp::SUB, 2, 3).rd, 0xffffffffu);
    // Reverse subtract: src2 - rs, the paper's negative-constant trick.
    EXPECT_EQ(run(AluOp::RSUB, 3, 1).rd, 0xfffffffeu); // 1 - 3 = -2
}

TEST(Alu, OverflowDetection)
{
    EXPECT_TRUE(run(AluOp::ADD, 0x7fffffff, 1).overflow);
    EXPECT_FALSE(run(AluOp::ADD, 0x7ffffffe, 1).overflow);
    EXPECT_TRUE(run(AluOp::SUB, 0x80000000, 1).overflow);
    EXPECT_TRUE(run(AluOp::RSUB, 1, 0x80000000).overflow);
    EXPECT_FALSE(run(AluOp::AND, 0x7fffffff, 0x7fffffff).overflow);
}

TEST(Alu, LogicAndShift)
{
    EXPECT_EQ(run(AluOp::AND, 0xf0f0, 0xff00).rd, 0xf000u);
    EXPECT_EQ(run(AluOp::OR, 0xf0, 0x0f).rd, 0xffu);
    EXPECT_EQ(run(AluOp::XOR, 0xff, 0x0f).rd, 0xf0u);
    EXPECT_EQ(run(AluOp::NOT, 0, 0).rd, 0xffffffffu);
    EXPECT_EQ(run(AluOp::SLL, 1, 4).rd, 16u);
    EXPECT_EQ(run(AluOp::SRL, 0x80000000, 31).rd, 1u);
    EXPECT_EQ(run(AluOp::SRA, 0x80000000, 31).rd, 0xffffffffu);
}

TEST(Alu, ExtractByte)
{
    // xc ptr, word, dest: byte selected by low 2 bits of the pointer.
    uint32_t word = 0x44332211;
    EXPECT_EQ(run(AluOp::XC, 0, word).rd, 0x11u);
    EXPECT_EQ(run(AluOp::XC, 1, word).rd, 0x22u);
    EXPECT_EQ(run(AluOp::XC, 2, word).rd, 0x33u);
    EXPECT_EQ(run(AluOp::XC, 3, word).rd, 0x44u);
    // Only the low two bits of the pointer matter.
    EXPECT_EQ(run(AluOp::XC, 7, word).rd, 0x44u);
}

TEST(Alu, InsertByte)
{
    // ic rs, rd: replace byte (LO & 3) of rd with low byte of rs.
    uint32_t old = 0x44332211;
    EXPECT_EQ(run(AluOp::IC, 0xaa, 0, old, 0).rd, 0x443322aau);
    EXPECT_EQ(run(AluOp::IC, 0xaa, 0, old, 1).rd, 0x4433aa11u);
    EXPECT_EQ(run(AluOp::IC, 0xaa, 0, old, 3).rd, 0xaa332211u);
    // Only the low byte of rs is inserted.
    EXPECT_EQ(run(AluOp::IC, 0x1bb, 0, old, 0).rd, 0x443322bbu);
}

/** Property: insert then extract at the same selector is the identity. */
TEST(Alu, InsertExtractRoundTripProperty)
{
    support::Rng rng(44);
    for (int i = 0; i < 500; ++i) {
        uint32_t word = static_cast<uint32_t>(rng.next());
        uint32_t byte = static_cast<uint32_t>(rng.next()) & 0xff;
        uint32_t sel = static_cast<uint32_t>(rng.next()) & 3;
        uint32_t inserted = run(AluOp::IC, byte, 0, word, sel).rd;
        EXPECT_EQ(run(AluOp::XC, sel, inserted).rd, byte);
        // Other bytes are untouched.
        for (uint32_t other = 0; other < 4; ++other) {
            if (other == sel)
                continue;
            EXPECT_EQ(run(AluOp::XC, other, inserted).rd,
                      run(AluOp::XC, other, word).rd);
        }
    }
}

TEST(Alu, SetConditionally)
{
    AluPiece p;
    p.op = AluOp::SET;
    p.cond = Cond::EQ;
    AluInputs in{5, 5, 0, 0};
    EXPECT_EQ(evalAlu(p, in).rd, 1u);
    in.src2 = 6;
    EXPECT_EQ(evalAlu(p, in).rd, 0u);
}

TEST(Alu, Movi8)
{
    AluPiece p;
    p.op = AluOp::MOVI8;
    p.imm8 = 200;
    EXPECT_EQ(evalAlu(p, AluInputs{}).rd, 200u);
}

TEST(Alu, LoPlumbing)
{
    EXPECT_TRUE(run(AluOp::MTLO, 7, 0).writes_lo);
    EXPECT_EQ(run(AluOp::MTLO, 7, 0).lo, 7u);
    EXPECT_EQ(run(AluOp::MFLO, 0, 0, 0, 9).rd, 9u);
}

/** MSTEP/DSTEP compose into full multiply/divide (32 steps). */
TEST(Alu, MultiplyViaSteps)
{
    support::Rng rng(45);
    for (int trial = 0; trial < 50; ++trial) {
        uint32_t a = static_cast<uint32_t>(rng.next()) & 0xffff;
        uint32_t b = static_cast<uint32_t>(rng.next()) & 0xffff;
        uint32_t acc = 0, lo = b, m = a;
        for (int step = 0; step < 32; ++step) {
            auto out = run(AluOp::MSTEP, m, 0, acc, lo);
            acc = out.rd;
            lo = out.lo;
            m <<= 1; // software doubles the multiplicand
        }
        EXPECT_EQ(acc, a * b);
    }
}

TEST(Alu, DivideViaSteps)
{
    support::Rng rng(46);
    for (int trial = 0; trial < 50; ++trial) {
        uint32_t n = static_cast<uint32_t>(rng.next()) & 0x7fffffff;
        uint32_t d = (static_cast<uint32_t>(rng.next()) & 0xffff) + 1;
        uint32_t rem = 0, lo = n;
        for (int step = 0; step < 32; ++step) {
            auto out = run(AluOp::DSTEP, d, 0, rem, lo);
            rem = out.rd;
            lo = out.lo;
        }
        EXPECT_EQ(lo, n / d);
        EXPECT_EQ(rem, n % d);
    }
}

// ------------------------------------------------------------ MemPiece

TEST(Mem, EffectiveAddresses)
{
    MemPiece m;
    m.mode = MemMode::ABSOLUTE;
    m.imm = 100;
    EXPECT_EQ(memEffectiveAddress(m, 0, 0), 100u);

    m.mode = MemMode::DISP;
    m.imm = -2;
    EXPECT_EQ(memEffectiveAddress(m, 10, 0), 8u);

    m.mode = MemMode::BASE_INDEX;
    EXPECT_EQ(memEffectiveAddress(m, 10, 5), 15u);

    // The paper's packed-byte-array access: word = base + (index >> 2).
    m.mode = MemMode::BASE_SHIFT;
    m.shift = 2;
    EXPECT_EQ(memEffectiveAddress(m, 100, 11), 102u);
}

TEST(Mem, Validation)
{
    MemPiece m;
    m.mode = MemMode::LONG_IMM;
    m.is_store = true;
    EXPECT_FALSE(memValidate(m).empty());

    m.is_store = false;
    m.imm = 1 << 25;
    EXPECT_FALSE(memValidate(m).empty());
    m.imm = -(1 << 20);
    EXPECT_TRUE(memValidate(m).empty());

    m.mode = MemMode::DISP;
    m.imm = 1 << 20;
    EXPECT_FALSE(memValidate(m).empty());
}

// ------------------------------------------------- Instruction queries

TEST(Inst, NopAndKindQueries)
{
    Instruction nop = Instruction::makeNop();
    EXPECT_TRUE(nop.isNop());
    EXPECT_FALSE(nop.isControlTransfer());
    EXPECT_FALSE(nop.referencesMemory());

    Instruction halt = Instruction::makeHalt();
    EXPECT_TRUE(halt.isControlTransfer());

    MemPiece ld;
    ld.mode = MemMode::DISP;
    ld.rd = 1;
    ld.base = 2;
    Instruction load = Instruction::makeMem(ld);
    EXPECT_TRUE(load.isLoad());
    EXPECT_FALSE(load.isStore());
    EXPECT_TRUE(load.referencesMemory());

    // A long-immediate "load" never touches memory.
    MemPiece li;
    li.mode = MemMode::LONG_IMM;
    li.imm = 1234;
    EXPECT_FALSE(Instruction::makeMem(li).referencesMemory());
    EXPECT_FALSE(Instruction::makeMem(li).isLoad());
}

TEST(Inst, RegUseAlu)
{
    AluPiece a;
    a.op = AluOp::ADD;
    a.rd = 3;
    a.rs = 1;
    a.src2 = Src2::fromReg(2);
    RegUse use = regUse(Instruction::makeAlu(a));
    EXPECT_TRUE(use.readsGpr(1));
    EXPECT_TRUE(use.readsGpr(2));
    EXPECT_FALSE(use.readsGpr(3));
    EXPECT_TRUE(use.writesGpr(3));

    // Immediate operand reads no second register.
    a.src2 = Src2::fromImm(5);
    use = regUse(Instruction::makeAlu(a));
    EXPECT_FALSE(use.readsGpr(2));
}

TEST(Inst, RegUseZeroRegisterIgnored)
{
    AluPiece a;
    a.op = AluOp::ADD;
    a.rd = 0;
    a.rs = 0;
    a.src2 = Src2::fromReg(0);
    RegUse use = regUse(Instruction::makeAlu(a));
    EXPECT_EQ(use.gpr_reads, 0);
    EXPECT_EQ(use.gpr_writes, 0);
}

TEST(Inst, RegUseInsertByteReadsDest)
{
    AluPiece a;
    a.op = AluOp::IC;
    a.rd = 2;
    a.rs = 3;
    RegUse use = regUse(Instruction::makeAlu(a));
    EXPECT_TRUE(use.readsGpr(2)); // read-modify-write
    EXPECT_TRUE(use.readsGpr(3));
    EXPECT_TRUE(use.writesGpr(2));
    EXPECT_TRUE(use.reads_lo);
}

TEST(Inst, RegUseMem)
{
    MemPiece st;
    st.mode = MemMode::DISP;
    st.is_store = true;
    st.rd = 1;
    st.base = 2;
    RegUse use = regUse(Instruction::makeMem(st));
    EXPECT_TRUE(use.readsGpr(1));
    EXPECT_TRUE(use.readsGpr(2));
    EXPECT_TRUE(use.writes_memory);
    EXPECT_FALSE(use.reads_memory);

    MemPiece ld;
    ld.mode = MemMode::BASE_SHIFT;
    ld.rd = 1;
    ld.base = 2;
    ld.index = 3;
    use = regUse(Instruction::makeMem(ld));
    EXPECT_TRUE(use.readsGpr(2));
    EXPECT_TRUE(use.readsGpr(3));
    EXPECT_TRUE(use.writesGpr(1));
    EXPECT_TRUE(use.reads_memory);
}

TEST(Inst, RegUseBranchAndJump)
{
    BranchPiece b;
    b.cond = Cond::EQ;
    b.rs = 4;
    b.src2 = Src2::fromReg(5);
    RegUse use = regUse(Instruction::makeBranch(b));
    EXPECT_TRUE(use.readsGpr(4));
    EXPECT_TRUE(use.readsGpr(5));

    JumpPiece j;
    j.kind = JumpKind::CALL_INDIRECT;
    j.target_reg = 6;
    j.link = 15;
    use = regUse(Instruction::makeJump(j));
    EXPECT_TRUE(use.readsGpr(6));
    EXPECT_TRUE(use.writesGpr(15));
}

TEST(Inst, ValidationRules)
{
    AluPiece a;
    a.op = AluOp::ADD;
    MemPiece m;
    m.mode = MemMode::DISP;
    m.imm = 3;

    EXPECT_TRUE(validate(Instruction::makePacked(a, m)).empty());

    // Packed displacement must fit 4 unsigned bits.
    m.imm = 16;
    EXPECT_FALSE(validate(Instruction::makePacked(a, m)).empty());
    m.imm = -1;
    EXPECT_FALSE(validate(Instruction::makePacked(a, m)).empty());

    // Non-packable ALU op.
    m.imm = 0;
    a.op = AluOp::SET;
    EXPECT_FALSE(validate(Instruction::makePacked(a, m)).empty());

    // ALU cannot pair with branch.
    Instruction bad;
    bad.alu = AluPiece{};
    bad.branch = BranchPiece{};
    EXPECT_FALSE(validate(bad).empty());

    // Two transfer pieces.
    Instruction two;
    two.mem = m;
    two.branch = BranchPiece{};
    EXPECT_FALSE(validate(two).empty());
}

TEST(Inst, PackableOps)
{
    EXPECT_TRUE(aluOpPackable(AluOp::ADD));
    EXPECT_TRUE(aluOpPackable(AluOp::XC));
    EXPECT_TRUE(aluOpPackable(AluOp::IC));
    EXPECT_FALSE(aluOpPackable(AluOp::SET));
    EXPECT_FALSE(aluOpPackable(AluOp::MOVI8));
    EXPECT_FALSE(aluOpPackable(AluOp::SRA));
}

// ---------------------------------------------------- Encoding round trip

/** Build a random valid instruction for the round-trip property test. */
Instruction
randomInstruction(support::Rng &rng)
{
    auto reg = [&rng] { return static_cast<Reg>(rng.below(16)); };
    auto src2 = [&](bool allow_imm = true) {
        if (allow_imm && rng.chance(0.4))
            return Src2::fromImm(static_cast<uint8_t>(rng.below(16)));
        return Src2::fromReg(reg());
    };

    switch (rng.below(6)) {
      case 0: { // ALU
        AluPiece a;
        a.op = static_cast<AluOp>(rng.below(kNumAluOps));
        a.rd = reg();
        a.rs = reg();
        if (a.op == AluOp::MOVI8)
            a.imm8 = static_cast<uint8_t>(rng.below(256));
        else
            a.src2 = src2();
        if (a.op == AluOp::SET)
            a.cond = static_cast<Cond>(rng.below(kNumConds));
        return Instruction::makeAlu(a);
      }
      case 1: { // MEM
        MemPiece m;
        m.mode = static_cast<MemMode>(rng.below(5));
        m.rd = reg();
        switch (m.mode) {
          case MemMode::LONG_IMM:
            m.imm = static_cast<int32_t>(rng.range(-(1 << 20),
                                                   (1 << 20) - 1));
            break;
          case MemMode::ABSOLUTE:
            m.is_store = rng.chance(0.5);
            m.imm = static_cast<int32_t>(rng.below(1 << 21));
            break;
          case MemMode::DISP:
            m.is_store = rng.chance(0.5);
            m.base = reg();
            m.imm = static_cast<int32_t>(rng.range(-(1 << 16),
                                                   (1 << 16) - 1));
            break;
          case MemMode::BASE_INDEX:
            m.is_store = rng.chance(0.5);
            m.base = reg();
            m.index = reg();
            break;
          case MemMode::BASE_SHIFT:
            m.is_store = rng.chance(0.5);
            m.base = reg();
            m.index = reg();
            m.shift = static_cast<uint8_t>(rng.below(8));
            break;
        }
        return Instruction::makeMem(m);
      }
      case 2: { // packed ALU+MEM
        AluPiece a;
        static const AluOp packable[] = {
            AluOp::ADD, AluOp::SUB, AluOp::AND, AluOp::OR,
            AluOp::XOR, AluOp::SLL, AluOp::XC, AluOp::IC,
        };
        a.op = packable[rng.below(8)];
        a.rd = reg();
        a.rs = reg();
        a.src2 = src2();
        MemPiece m;
        m.mode = MemMode::DISP;
        m.is_store = rng.chance(0.5);
        m.rd = reg();
        m.base = reg();
        m.imm = static_cast<int32_t>(rng.below(16));
        return Instruction::makePacked(a, m);
      }
      case 3: { // branch
        BranchPiece b;
        b.cond = static_cast<Cond>(rng.below(kNumConds));
        b.rs = reg();
        b.src2 = src2();
        b.offset = static_cast<int32_t>(rng.range(-(1 << 15),
                                                  (1 << 15) - 1));
        return Instruction::makeBranch(b);
      }
      case 4: { // jump
        JumpPiece j;
        j.kind = static_cast<JumpKind>(rng.below(4));
        switch (j.kind) {
          case JumpKind::DIRECT:
            j.target_addr = static_cast<uint32_t>(rng.below(1 << 24));
            break;
          case JumpKind::INDIRECT:
            j.target_reg = reg();
            break;
          case JumpKind::CALL_DIRECT:
            j.link = reg();
            j.target_addr = static_cast<uint32_t>(rng.below(1 << 23));
            break;
          case JumpKind::CALL_INDIRECT:
            j.link = reg();
            j.target_reg = reg();
            break;
        }
        return Instruction::makeJump(j);
      }
      default: { // special
        SpecialPiece p;
        switch (rng.below(5)) {
          case 0:
            p.op = SpecialOp::TRAP;
            p.trap_code = static_cast<uint16_t>(rng.below(4096));
            break;
          case 1:
            p.op = SpecialOp::RFE;
            break;
          case 2:
            p.op = SpecialOp::MFS;
            p.reg = reg();
            p.sreg = static_cast<SpecialReg>(
                rng.below(kNumSpecialRegs));
            break;
          case 3:
            p.op = SpecialOp::MTS;
            p.reg = reg();
            p.sreg = static_cast<SpecialReg>(
                rng.below(kNumSpecialRegs));
            break;
          default:
            p.op = SpecialOp::HALT;
            break;
        }
        return Instruction::makeSpecial(p);
      }
    }
}

/**
 * Normalize semantically-dead fields the decoder cannot recover (e.g.
 * the cond field of a non-SET ALU op defaults to ALWAYS; MOVI8 has no
 * src2). randomInstruction only sets live fields, so this is identity
 * for it; kept for documentation value.
 */
TEST(Encoding, RoundTripProperty)
{
    support::Rng rng(4242);
    for (int i = 0; i < 5000; ++i) {
        Instruction inst = randomInstruction(rng);
        ASSERT_EQ(validate(inst), "");
        uint32_t word = encode(inst);
        auto decoded = decode(word);
        ASSERT_TRUE(decoded.ok()) << decoded.error().str();
        EXPECT_EQ(decoded.value(), inst)
            << "disasm: " << disasm(inst) << " vs "
            << disasm(decoded.value());
        // Decode must also be stable: re-encode gives the same word.
        EXPECT_EQ(encode(decoded.value()), word);
    }
}

TEST(Encoding, NopIsAllZeroFormat)
{
    uint32_t word = encode(Instruction::makeNop());
    auto decoded = decode(word);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().isNop());
}

TEST(Encoding, ReservedFormatsRejected)
{
    // Formats 6 and 7 are reserved.
    EXPECT_FALSE(decode(6u << 29).ok());
    EXPECT_FALSE(decode(7u << 29).ok());
    // Bad ALU opcode.
    EXPECT_FALSE(decode((1u << 29) | (60u << 23)).ok());
    // Bad memory mode.
    EXPECT_FALSE(decode((2u << 29) | (7u << 26)).ok());
    // Bad special subcode.
    EXPECT_FALSE(decode((0u << 29) | (9u << 25)).ok());
}

// ------------------------------------------------------------- Disasm

TEST(Disasm, Samples)
{
    AluPiece a;
    a.op = AluOp::ADD;
    a.rs = 1;
    a.src2 = Src2::fromImm(3);
    a.rd = 2;
    EXPECT_EQ(disasm(Instruction::makeAlu(a)), "add r1, #3, r2");

    MemPiece m;
    m.mode = MemMode::DISP;
    m.imm = 2;
    m.base = 13;
    m.rd = 5;
    EXPECT_EQ(disasm(Instruction::makeMem(m)), "ld 2(r13), r5");
    m.is_store = true;
    EXPECT_EQ(disasm(Instruction::makeMem(m)), "st r5, 2(r13)");

    BranchPiece b;
    b.cond = Cond::EQ;
    b.rs = 1;
    b.src2 = Src2::fromImm(0);
    b.offset = 3;
    EXPECT_EQ(disasm(Instruction::makeBranch(b), 10), "beq r1, #0, 14");

    EXPECT_EQ(disasm(Instruction::makeNop()), "nop");
    EXPECT_EQ(disasm(Instruction::makeTrap(9)), "trap #9");
}

TEST(Disasm, PackedShowsBothPieces)
{
    AluPiece a;
    a.op = AluOp::ADD;
    a.rs = 1;
    a.src2 = Src2::fromImm(1);
    a.rd = 1;
    MemPiece m;
    m.mode = MemMode::DISP;
    m.imm = 0;
    m.base = 2;
    m.rd = 3;
    std::string text = disasm(Instruction::makePacked(a, m));
    EXPECT_NE(text.find("add"), std::string::npos);
    EXPECT_NE(text.find("|"), std::string::npos);
    EXPECT_NE(text.find("ld"), std::string::npos);
}

} // namespace
} // namespace mips::isa
