/**
 * @file
 * Tests for the observability layer (src/obs): metrics registry
 * exactness under concurrency, histogram bucket-edge semantics,
 * snapshot determinism, span parentage and ring bounding, and the
 * catalog↔enum lockstep guards that keep docs/METRICS.md honest.
 *
 * The registry is process-wide, so every test registers names under
 * its own unique prefix; the lockstep tests read only the catalog.
 */
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/catalog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/session.h"
#include "verify/diagnostics.h"

namespace obs = mips::obs;

TEST(Counter, ConcurrentIncrementsSumExactly)
{
    obs::Counter &c = obs::Registry::instance().counter(
        "test.counter.concurrent", "count", "test");
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.add();
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, AddNAndReset)
{
    obs::Counter &c = obs::Registry::instance().counter(
        "test.counter.addn", "count", "test");
    c.add(41);
    c.add();
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddGoDown)
{
    obs::Gauge &g = obs::Registry::instance().gauge(
        "test.gauge.level", "items", "test");
    g.set(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.add(-9);
    EXPECT_EQ(g.value(), -2); // gauges may go negative
}

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds)
{
    obs::Histogram &h = obs::Registry::instance().histogram(
        "test.hist.edges", "ms", "test", {1.0, 10.0, 100.0});
    // v <= bound lands in that bucket: the edge value itself is in.
    h.observe(0.5);   // bucket 0 (<= 1)
    h.observe(1.0);   // bucket 0, exactly on the edge
    h.observe(1.001); // bucket 1 (<= 10)
    h.observe(10.0);  // bucket 1, exactly on the edge
    h.observe(100.0); // bucket 2, exactly on the last edge
    h.observe(100.5); // overflow
    std::vector<uint64_t> counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u); // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.001 + 10.0 + 100.0 + 100.5);
}

TEST(Histogram, ConcurrentObservationsCountExactly)
{
    obs::Histogram &h = obs::Registry::instance().histogram(
        "test.hist.concurrent", "ms", "test", {1.0, 2.0});
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 50'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&h, t] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                h.observe(t % 2 == 0 ? 0.5 : 1.5);
        });
    }
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(h.count(), kThreads * kPerThread);
    std::vector<uint64_t> counts = h.bucketCounts();
    EXPECT_EQ(counts[0], kThreads / 2 * kPerThread);
    EXPECT_EQ(counts[1], kThreads / 2 * kPerThread);
    EXPECT_EQ(counts[2], 0u);
}

TEST(Registry, RegistrationIsIdempotentByName)
{
    obs::Counter &a = obs::Registry::instance().counter(
        "test.registry.same", "count", "test");
    obs::Counter &b = obs::Registry::instance().counter(
        "test.registry.same", "count", "redefinition help is ignored");
    EXPECT_EQ(&a, &b);
    a.add();
    EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, SnapshotIsSortedAndDeterministic)
{
    obs::Registry &r = obs::Registry::instance();
    r.counter("test.snapshot.b", "count", "test").add(2);
    r.counter("test.snapshot.a", "count", "test").add(1);
    obs::Snapshot first = r.snapshot();
    obs::Snapshot second = r.snapshot();
    ASSERT_EQ(first.samples.size(), second.samples.size());
    for (size_t i = 0; i + 1 < first.samples.size(); ++i)
        EXPECT_LT(first.samples[i].name, first.samples[i + 1].name);
    for (size_t i = 0; i < first.samples.size(); ++i)
        EXPECT_EQ(first.samples[i].name, second.samples[i].name);
    EXPECT_EQ(first.counter("test.snapshot.a"), 1u);
    EXPECT_EQ(first.counter("test.snapshot.b"), 2u);
    EXPECT_EQ(first.counter("test.snapshot.absent"), 0u);
    ASSERT_NE(first.find("test.snapshot.a"), nullptr);
    EXPECT_EQ(first.find("test.snapshot.absent"), nullptr);
}

TEST(Registry, RenderersCarryRegisteredNames)
{
    obs::Registry &r = obs::Registry::instance();
    r.counter("test.render.hits", "count", "test").add(7);
    obs::Snapshot snap = r.snapshot();
    std::string json = snap.json();
    EXPECT_NE(json.find("\"schema\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"test.render.hits\""), std::string::npos);
    std::string table = snap.table();
    EXPECT_NE(table.find("test.render.hits"), std::string::npos);
    EXPECT_NE(table.find("7"), std::string::npos);
}

TEST(Registry, ResetZeroesValuesButKeepsDefinitions)
{
    obs::Registry &r = obs::Registry::instance();
    obs::Counter &c = r.counter("test.reset.c", "count", "test");
    obs::Histogram &h =
        r.histogram("test.reset.h", "ms", "test", {1.0});
    c.add(5);
    h.observe(0.5);
    r.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    obs::Snapshot snap = r.snapshot();
    EXPECT_NE(snap.find("test.reset.c"), nullptr);
    EXPECT_NE(snap.find("test.reset.h"), nullptr);
}

// ------------------------------------------------------------- tracing

TEST(Trace, DisabledSpansAreInert)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable(false);
    {
        obs::Span span("inert");
        EXPECT_EQ(span.id(), 0u);
    }
    EXPECT_TRUE(tracer.spans().empty());
}

TEST(Trace, SpansRecordParentageAndFinishOrder)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable(true);
    uint64_t outer_id = 0;
    uint64_t inner_id = 0;
    {
        obs::Span outer("outer", "unit-a");
        outer_id = outer.id();
        {
            obs::Span inner("inner");
            inner_id = inner.id();
        }
    }
    std::vector<obs::SpanRecord> spans = tracer.spans();
    tracer.enable(false);
    ASSERT_EQ(spans.size(), 2u);
    // Destruction order: the inner span finishes (and records) first.
    EXPECT_EQ(spans[0].id, inner_id);
    EXPECT_EQ(spans[0].name, "inner");
    EXPECT_EQ(spans[0].parent, outer_id);
    EXPECT_EQ(spans[1].id, outer_id);
    EXPECT_EQ(spans[1].name, "outer");
    EXPECT_EQ(spans[1].parent, 0u) << "outer span must be a root";
    EXPECT_EQ(spans[1].detail, "unit-a");
    EXPECT_GE(spans[0].dur_us, 0);
    EXPECT_LE(spans[1].start_us, spans[0].start_us)
        << "outer span starts before the nested span";
}

TEST(Trace, RingBoundsMemoryAndCountsDrops)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable(true);
    tracer.setCapacity(4);
    for (int i = 0; i < 10; ++i)
        obs::Span span("span-" + std::to_string(i));
    std::vector<obs::SpanRecord> spans = tracer.spans();
    EXPECT_EQ(tracer.dropped(), 6u);
    tracer.enable(false);
    tracer.setCapacity(65536); // restore the default for later tests
    ASSERT_EQ(spans.size(), 4u);
    // Oldest-first: the survivors are the last four spans recorded.
    EXPECT_EQ(spans[0].name, "span-6");
    EXPECT_EQ(spans[3].name, "span-9");
}

TEST(Trace, ChromeTraceExportContainsCompleteEvents)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable(true);
    { obs::Span span("exported", "detail"); }
    std::string doc = tracer.chromeTrace();
    tracer.enable(false);
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"exported\""), std::string::npos);
}

// ------------------------------------- catalog ↔ enum lockstep guards

TEST(Catalog, PipelineStageNamesMatchSessionEnum)
{
    namespace pl = mips::pipeline;
    ASSERT_EQ(obs::kPipelineStageCount, pl::kStageCount);
    for (size_t s = 0; s < pl::kStageCount; ++s) {
        EXPECT_STREQ(obs::pipelineStageName(s),
                     pl::stageName(static_cast<pl::Stage>(s)))
            << "stage " << s
            << ": obs/catalog.cc mirror drifted from pipeline/session";
    }
}

TEST(Catalog, VerifyDiagCodeNamesMatchDiagnosticsEnum)
{
    namespace vf = mips::verify;
    ASSERT_EQ(obs::kVerifyDiagCodes,
              static_cast<size_t>(vf::kNumCodes));
    for (size_t c = 0; c < obs::kVerifyDiagCodes; ++c) {
        // TV090 renders as "TV-UNKNOWN" in diagnostics output, but the
        // metric name keeps the stable enumerator so verify.diag.*
        // names never change even if display names do.
        const char *expected =
            static_cast<vf::Code>(c) == vf::Code::TV090
                ? "TV090"
                : vf::codeName(static_cast<vf::Code>(c));
        EXPECT_STREQ(obs::verifyDiagCodeName(c), expected)
            << "code " << c
            << ": obs/catalog.cc mirror drifted from verify/diagnostics";
    }
}

TEST(Catalog, RegisterBuiltinMetricsIsIdempotentAndComplete)
{
    obs::registerBuiltinMetrics();
    size_t count = obs::Registry::instance().names().size();
    obs::registerBuiltinMetrics();
    EXPECT_EQ(obs::Registry::instance().names().size(), count);

    obs::Snapshot snap = obs::Registry::instance().snapshot();
    // Spot-check one name per subsystem; check_metrics_docs.sh covers
    // the full list against docs/METRICS.md.
    for (const char *name :
         {"pipeline.compile.lookups", "pipeline.stage_miss_ms",
          "pipeline.cache.shard_conflicts", "batch.queue_depth",
          "batch.steals", "batch.chunk_claims", "sim.instructions",
          "sim.decode_cache.hits", "sim.tlb.hits", "verify.units",
          "verify.diag.HZ001", "verify.unit_ms", "tv.proved"}) {
        EXPECT_NE(snap.find(name), nullptr)
            << name << " missing from registerBuiltinMetrics()";
    }
}

TEST(Catalog, StageMetricHandlesAreStable)
{
    obs::StageMetrics &a = obs::pipelineStageMetrics(1);
    obs::StageMetrics &b = obs::pipelineStageMetrics(1);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.lookups, b.lookups);
}
