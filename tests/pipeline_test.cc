/**
 * @file
 * Pipeline-session tests: cache identity and keying, parallel/serial
 * equivalence of `runAll`, counter consistency, error caching,
 * same-key herd coalescing and shard distribution of the sharded
 * cache, and the BatchRunner's ordering, stealing, queue-depth, and
 * exception contracts.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "asm/unit.h"
#include "obs/catalog.h"
#include "pipeline/batch.h"
#include "pipeline/session.h"
#include "workload/analyzers.h"
#include "workload/corpus.h"

namespace {

using namespace mips;

std::vector<workload::CorpusProgram>
testCorpus()
{
    std::vector<workload::CorpusProgram> programs = workload::corpus();
    programs.push_back(workload::fibonacciProgram());
    return programs;
}

pipeline::ChainSpec
fullChain()
{
    pipeline::ChainSpec spec;
    spec.hazard_verify = true;
    spec.translation_validate = true;
    spec.simulate = true;
    return spec;
}

// A parallel runAll must produce results element-wise identical to a
// serial one: same order, same rendered units, same diagnostics, same
// simulation outcome.
TEST(PipelineSession, ParallelRunAllMatchesSerial)
{
    std::vector<workload::CorpusProgram> programs = testCorpus();
    pipeline::StageOptions options;
    pipeline::ChainSpec spec = fullChain();

    pipeline::Session serial_session;
    std::vector<pipeline::ChainResult> serial = pipeline::runAll(
        serial_session, programs, spec, options, 1);
    pipeline::Session parallel_session;
    std::vector<pipeline::ChainResult> parallel = pipeline::runAll(
        parallel_session, programs, spec, options, 8);

    ASSERT_EQ(serial.size(), programs.size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        const pipeline::ChainResult &a = serial[i];
        const pipeline::ChainResult &b = parallel[i];
        SCOPED_TRACE(a.name);
        EXPECT_EQ(a.name, programs[i].name);
        EXPECT_EQ(a.name, b.name);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(assembler::listUnit(a.reorg->final_unit),
                  assembler::listUnit(b.reorg->final_unit));
        EXPECT_EQ(a.verify->report.errors, b.verify->report.errors);
        EXPECT_EQ(a.verify->report.warnings, b.verify->report.warnings);
        EXPECT_EQ(a.verify->report.diagnostics.size(),
                  b.verify->report.diagnostics.size());
        EXPECT_EQ(a.tv->report.errors, b.tv->report.errors);
        EXPECT_EQ(a.tv->report.notes, b.tv->report.notes);
        EXPECT_EQ(a.sim->stop, b.sim->stop);
        EXPECT_EQ(a.sim->cycles, b.sim->cycles);
        EXPECT_EQ(a.sim->console, b.sim->console);
    }
}

// A cache hit hands back the very artifact the cold run produced —
// pointer identity, not just equality — and counts as a hit.
TEST(PipelineSession, CacheHitReturnsSameArtifact)
{
    pipeline::Session session;
    const char *source = workload::fibonacciProgram().source;

    auto first = session.compile(source);
    ASSERT_TRUE(first.ok());
    auto second = session.compile(source);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value().get(), second.value().get());

    auto reorg1 = session.reorganize(source);
    ASSERT_TRUE(reorg1.ok());
    auto reorg2 = session.reorganize(source);
    ASSERT_TRUE(reorg2.ok());
    EXPECT_EQ(reorg1.value().get(), reorg2.value().get());
    // The reorganize artifact's input is the cached compile artifact.
    EXPECT_EQ(reorg1.value()->compile.get(), first.value().get());

    pipeline::PipelineStats stats = session.stats();
    size_t compile_idx =
        static_cast<size_t>(pipeline::Stage::COMPILE);
    size_t reorg_idx =
        static_cast<size_t>(pipeline::Stage::REORGANIZE);
    EXPECT_EQ(stats.stage[compile_idx].misses, 1u);
    EXPECT_GE(stats.stage[compile_idx].hits, 2u); // 2nd compile + reorgs
    EXPECT_EQ(stats.stage[reorg_idx].misses, 1u);
    EXPECT_EQ(stats.stage[reorg_idx].hits, 1u);
}

// Changing any stage option must miss that stage's cache (while the
// stages it depends on still hit).
TEST(PipelineSession, OptionChangeMissesCache)
{
    pipeline::Session session;
    const char *source = workload::fibonacciProgram().source;

    pipeline::StageOptions defaults;
    auto base = session.reorganize(source, defaults);
    ASSERT_TRUE(base.ok());

    pipeline::StageOptions no_pack = defaults;
    no_pack.reorg.pack = false;
    auto unpacked = session.reorganize(source, no_pack);
    ASSERT_TRUE(unpacked.ok());
    EXPECT_NE(base.value().get(), unpacked.value().get());

    pipeline::StageOptions volatile_base = defaults;
    volatile_base.reorg.alias.volatile_base = true;
    auto strict = session.reorganize(source, volatile_base);
    ASSERT_TRUE(strict.ok());
    EXPECT_NE(base.value().get(), strict.value().get());

    pipeline::PipelineStats stats = session.stats();
    size_t compile_idx =
        static_cast<size_t>(pipeline::Stage::COMPILE);
    size_t reorg_idx =
        static_cast<size_t>(pipeline::Stage::REORGANIZE);
    // Three distinct reorganize keys, one shared compile key.
    EXPECT_EQ(stats.stage[reorg_idx].misses, 3u);
    EXPECT_EQ(stats.stage[compile_idx].misses, 1u);
    EXPECT_EQ(stats.stage[compile_idx].hits, 2u);
}

// hits + misses must equal the number of stage requests, and a second
// identical pass must be all hits (no new misses).
TEST(PipelineSession, StatsCountersConsistent)
{
    std::vector<workload::CorpusProgram> programs = testCorpus();
    pipeline::Session session;
    pipeline::StageOptions options;
    pipeline::ChainSpec spec = fullChain();

    pipeline::runAll(session, programs, spec, options, 1);
    pipeline::PipelineStats cold = session.stats();
    // Each program touches compile, reorganize, verify, tv, simulate
    // exactly once, cold.
    size_t n = programs.size();
    for (pipeline::Stage s :
         {pipeline::Stage::COMPILE, pipeline::Stage::REORGANIZE,
          pipeline::Stage::HAZARD_VERIFY,
          pipeline::Stage::TRANSLATION_VALIDATE,
          pipeline::Stage::SIMULATE}) {
        const pipeline::StageCounters &c =
            cold.stage[static_cast<size_t>(s)];
        SCOPED_TRACE(pipeline::stageName(s));
        EXPECT_EQ(c.misses, n);
        EXPECT_GE(c.miss_ms, 0.0);
    }
    // Downstream stages resolve their dependencies through the cache,
    // so compile gets one hit per dependent stage request.
    uint64_t cold_hits = cold.hits();
    uint64_t cold_misses = cold.misses();
    EXPECT_EQ(cold_misses, 5 * n);

    pipeline::runAll(session, programs, spec, options, 1);
    pipeline::PipelineStats warm = session.stats();
    EXPECT_EQ(warm.misses(), cold_misses); // nothing recomputed
    EXPECT_GT(warm.hits(), cold_hits);

    session.clear();
    pipeline::PipelineStats cleared = session.stats();
    EXPECT_EQ(cleared.hits(), 0u);
    EXPECT_EQ(cleared.misses(), 0u);
    // After clear() the same request is a miss again.
    ASSERT_TRUE(session.compile(programs[0].source).ok());
    EXPECT_EQ(session.stats().misses(), 1u);
}

// Recoverable input failures are cached like artifacts: the second
// request replays the error without recomputing.
TEST(PipelineSession, ErrorsAreCached)
{
    pipeline::Session session;
    const char *bad = "program p; begin x := ; end.";

    auto first = session.compile(bad);
    ASSERT_FALSE(first.ok());
    auto second = session.compile(bad);
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(first.error().str(), second.error().str());

    pipeline::PipelineStats stats = session.stats();
    size_t compile_idx =
        static_cast<size_t>(pipeline::Stage::COMPILE);
    EXPECT_EQ(stats.stage[compile_idx].misses, 1u);
    EXPECT_EQ(stats.stage[compile_idx].hits, 1u);

    // A chain over a bad program reports the failure, not a crash.
    std::vector<workload::CorpusProgram> programs = {
        {"bad", bad, ""}};
    std::vector<pipeline::ChainResult> results = pipeline::runAll(
        session, programs, fullChain(), pipeline::StageOptions{}, 2);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok());
    EXPECT_FALSE(results[0].error.empty());
}

// The profiling simulate stage must agree with the standalone
// workload profiler it replaced.
TEST(PipelineSession, SimulateMatchesWorkloadProfiler)
{
    const char *source = workload::fibonacciProgram().source;
    pipeline::StageOptions options;
    options.sim.profile = true;

    auto sim = pipeline::sharedSession().simulate(source, options);
    ASSERT_TRUE(sim.ok());
    auto profiled = workload::profileProgram(
        source, plc::Layout::WORD_ALLOCATED);
    ASSERT_TRUE(profiled.ok());

    EXPECT_EQ(sim.value()->stop, sim::StopReason::HALT);
    EXPECT_EQ(sim.value()->cycles, profiled.value().cycles);
    EXPECT_EQ(sim.value()->free_data_cycles,
              profiled.value().free_data_cycles);
    EXPECT_EQ(sim.value()->console, profiled.value().console);
    EXPECT_EQ(sim.value()->refs.loads32, profiled.value().refs.loads32);
    EXPECT_EQ(sim.value()->refs.stores32,
              profiled.value().refs.stores32);
    EXPECT_EQ(sim.value()->refs.loads8, profiled.value().refs.loads8);
    EXPECT_EQ(sim.value()->refs.stores8, profiled.value().refs.stores8);
}

// A thundering herd on one key computes exactly once: every thread
// gets the same artifact (pointer identity), latecomers either hit
// the published slot or block on the in-flight computation — never
// recompute.
TEST(PipelineSession, SameKeyHerdComputesOnce)
{
    pipeline::Session session;
    const char *source = workload::fibonacciProgram().source;
    constexpr int kThreads = 32;

    std::atomic<int> arrived{0};
    std::vector<const void *> seen(kThreads, nullptr);
    std::vector<std::thread> herd;
    herd.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        herd.emplace_back([&, t] {
            // Rendezvous so the requests overlap as much as the
            // scheduler allows before anyone looks up the key.
            arrived.fetch_add(1);
            while (arrived.load() < kThreads)
                std::this_thread::yield();
            auto result = session.compile(source);
            ASSERT_TRUE(result.ok());
            seen[t] = result.value().get();
        });
    for (std::thread &t : herd)
        t.join();

    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[t], seen[0]);

    const pipeline::StageCounters &c = session.stats().stage[
        static_cast<size_t>(pipeline::Stage::COMPILE)];
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.hits, static_cast<uint64_t>(kThreads - 1));
    // wait_blocks counts the subset of hits that had to block on the
    // in-flight computation; it is scheduler-dependent, but never
    // exceeds the hits.
    EXPECT_LE(c.wait_blocks, c.hits);
}

// The shard function must spread distinct keys across the whole
// shard array — a constant (or near-constant) shard index would
// silently restore the old single-lock bottleneck.
TEST(PipelineSession, ShardFunctionSpreadsKeys)
{
    std::vector<size_t> population(pipeline::kCacheShards, 0);
    constexpr size_t kKeys = 1000;
    for (size_t i = 0; i < kKeys; ++i) {
        std::string key =
            "options|key-" + std::to_string(i) + "|source text";
        size_t shard = pipeline::cacheShardOf(key);
        ASSERT_LT(shard, pipeline::kCacheShards);
        ++population[shard];
    }
    size_t mean = kKeys / pipeline::kCacheShards;
    for (size_t s = 0; s < pipeline::kCacheShards; ++s) {
        SCOPED_TRACE("shard " + std::to_string(s));
        EXPECT_GT(population[s], 0u);
        EXPECT_LT(population[s], 3 * mean);
    }
}

// Distinct-key parallel work never blocks on an in-flight
// computation: each program's stage keys are unique, so a corpus fan
// out across 8 workers must finish with zero wait_blocks.
TEST(PipelineSession, DistinctKeysNeverWait)
{
    pipeline::Session session;
    pipeline::runAll(session, testCorpus(), fullChain(),
                     pipeline::StageOptions{}, 8);
    pipeline::PipelineStats stats = session.stats();
    for (size_t s = 0; s < pipeline::kStageCount; ++s) {
        SCOPED_TRACE(pipeline::stageName(
            static_cast<pipeline::Stage>(s)));
        EXPECT_EQ(stats.stage[s].wait_blocks, 0u);
    }
}

// ----------------------------------------------------- BatchRunner

// Results land at their input index regardless of completion order.
TEST(BatchRunner, CollectsResultsInInputOrder)
{
    std::vector<int> items;
    for (int i = 0; i < 64; ++i)
        items.push_back(i);

    pipeline::BatchRunner runner(8);
    std::atomic<int> active{0};
    std::vector<int> out =
        runner.runAll(items, [&active](int item, size_t index) {
            ++active;
            EXPECT_EQ(static_cast<size_t>(item), index);
            --active;
            return item * 3;
        });
    EXPECT_EQ(active.load(), 0);
    ASSERT_EQ(out.size(), items.size());
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

// jobs == 1 runs inline (no threads), same contract.
TEST(BatchRunner, SerialFallback)
{
    std::vector<int> items = {5, 6, 7};
    pipeline::BatchRunner runner(1);
    std::vector<int> out = runner.runAll(
        items, [](int item, size_t) { return item + 1; });
    EXPECT_EQ(out, (std::vector<int>{6, 7, 8}));
}

// jobs == 0 means auto: one worker per hardware thread.
TEST(BatchRunner, ZeroJobsMeansAuto)
{
    pipeline::BatchRunner runner(0);
    EXPECT_EQ(runner.jobs(), pipeline::BatchRunner::defaultJobs());
    EXPECT_GE(runner.jobs(), 1u);
    // The auto-sized runner still honours the runAll contract.
    std::vector<int> items = {1, 2, 3, 4};
    std::vector<int> out = runner.runAll(
        items, [](int item, size_t) { return item * 2; });
    EXPECT_EQ(out, (std::vector<int>{2, 4, 6, 8}));
}

// When one worker is pinned on a long item, the other must steal the
// rest of its claimed chunk instead of idling.
TEST(BatchRunner, IdleWorkerStealsQueuedItems)
{
    obs::BatchMetrics &bm = obs::batchMetrics();
    uint64_t steals_before = bm.steals->value();
    uint64_t chunks_before = bm.chunk_claims->value();

    // 16 items across 2 workers -> chunk size 2: whichever worker
    // claims {0, 1} sleeps 100 ms on item 0 with item 1 queued; the
    // other drains the cursor in ~30 ms of 2 ms items and then steals
    // item 1 off the sleeper's queue.
    std::vector<int> items(16);
    for (int i = 0; i < 16; ++i)
        items[i] = i;
    pipeline::BatchRunner runner(2);
    std::vector<int> out =
        runner.runAll(items, [](int item, size_t) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(item == 0 ? 100 : 2));
            return item + 100;
        });

    ASSERT_EQ(out.size(), items.size());
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) + 100);
    EXPECT_GE(bm.steals->value(), steals_before + 1);
    EXPECT_GT(bm.chunk_claims->value(), chunks_before);
}

// The queue-depth gauge tracks completions, not claims: it must read
// 0 after every run, serial and parallel alike.
TEST(BatchRunner, QueueDepthReturnsToZero)
{
    obs::BatchMetrics &bm = obs::batchMetrics();
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
    for (unsigned jobs : {1u, 4u}) {
        pipeline::BatchRunner runner(jobs);
        runner.runAll(items, [&bm](int item, size_t) {
            // While an item runs, the gauge counts it as outstanding.
            EXPECT_GT(bm.queue_depth->value(), 0);
            return item;
        });
        EXPECT_EQ(bm.queue_depth->value(), 0);
    }
}

// A throwing work item propagates out of runAll; with several
// failures, the lowest input index wins (deterministically).
TEST(BatchRunner, PropagatesLowestIndexException)
{
    std::vector<int> items = {0, 1, 2, 3, 4, 5, 6, 7};
    pipeline::BatchRunner runner(4);
    try {
        runner.runAll(items, [](int item, size_t) -> int {
            if (item >= 3)
                throw std::runtime_error("boom " +
                                         std::to_string(item));
            return item;
        });
        FAIL() << "expected runAll to throw";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 3");
    }
}

} // namespace
