/**
 * @file
 * Compiler tests: lexing, parsing, semantic errors, and — most
 * importantly — end-to-end execution: each source program is compiled,
 * run on the functional machine as legal code, reorganized, run on the
 * interlock-free pipeline, and its console output compared against the
 * expected text under both data layouts.
 */
#include <gtest/gtest.h>

#include "plc/driver.h"
#include "plc/lexer.h"
#include "plc/parser.h"
#include "sim/machine.h"

namespace mips::plc {
namespace {

// ------------------------------------------------------------- Lexer

TEST(Lexer, TokensAndPositions)
{
    auto tokens = lex("program p;\nbegin x := 'a' + 42 end.");
    ASSERT_TRUE(tokens.ok());
    const auto &toks = tokens.value();
    EXPECT_EQ(toks[0].kind, Tok::KW_PROGRAM);
    EXPECT_EQ(toks[1].kind, Tok::IDENT);
    EXPECT_EQ(toks[1].text, "p");
    EXPECT_EQ(toks[3].kind, Tok::KW_BEGIN);
    EXPECT_EQ(toks[3].line, 2);
    EXPECT_EQ(toks[5].kind, Tok::ASSIGN);
    EXPECT_EQ(toks[6].kind, Tok::CHAR_LIT);
    EXPECT_EQ(toks[6].char_value, 'a');
    EXPECT_EQ(toks[8].kind, Tok::INT_LIT);
    EXPECT_EQ(toks[8].int_value, 42);
}

TEST(Lexer, CommentsAndCase)
{
    auto tokens = lex("PROGRAM T; { comment } (* another *) BEGIN END.");
    ASSERT_TRUE(tokens.ok());
    EXPECT_EQ(tokens.value()[0].kind, Tok::KW_PROGRAM);
    EXPECT_EQ(tokens.value()[3].kind, Tok::KW_BEGIN);
}

TEST(Lexer, TwoCharOperators)
{
    auto tokens = lex("program p; begin a := b <> c; d := e <= f end.");
    ASSERT_TRUE(tokens.ok());
    bool saw_ne = false, saw_le = false;
    for (const Token &t : tokens.value()) {
        saw_ne |= t.kind == Tok::NE;
        saw_le |= t.kind == Tok::LE;
    }
    EXPECT_TRUE(saw_ne);
    EXPECT_TRUE(saw_le);
}

TEST(Lexer, Errors)
{
    EXPECT_FALSE(lex("program p; { unterminated").ok());
    EXPECT_FALSE(lex("x := 'ab'").ok());
    EXPECT_FALSE(lex("x := 99999999999").ok());
    EXPECT_FALSE(lex("x := ?").ok());
}

// ------------------------------------------------------------- Parser

TEST(ParserTest, ProgramShape)
{
    auto ast = parseProgram(
        "program demo;\n"
        "const max = 10; letter = 'z';\n"
        "var i, j: integer;\n"
        "    buf: array [0..9] of integer;\n"
        "    line: packed array [1..80] of char;\n"
        "function double(x: integer): integer;\n"
        "begin double := x + x; end;\n"
        "begin\n"
        "  i := double(3);\n"
        "  for j := 0 to 9 do buf[j] := i;\n"
        "end.\n");
    ASSERT_TRUE(ast.ok()) << ast.error().str();
    const ProgramAst &p = ast.value();
    EXPECT_EQ(p.name, "demo");
    ASSERT_EQ(p.consts.size(), 2u);
    EXPECT_EQ(p.consts[1].value, 'z');
    EXPECT_TRUE(p.consts[1].is_char);
    ASSERT_EQ(p.globals.size(), 4u);
    EXPECT_TRUE(p.globals[2].type.is_array);
    EXPECT_TRUE(p.globals[3].type.packed);
    EXPECT_EQ(p.globals[3].type.lo, 1);
    EXPECT_EQ(p.globals[3].type.hi, 80);
    ASSERT_EQ(p.routines.size(), 1u);
    EXPECT_TRUE(p.routines[0].is_function);
    ASSERT_EQ(p.body.size(), 2u);
    EXPECT_EQ(p.body[1]->kind, Stmt::Kind::FOR);
}

TEST(ParserTest, Precedence)
{
    auto ast = parseProgram(
        "program p; var a: integer; b: boolean;\n"
        "begin b := a + 2 * 3 < 10; end.");
    ASSERT_TRUE(ast.ok()) << ast.error().str();
    const Expr &e = *ast.value().body[0]->value;
    ASSERT_EQ(e.kind, Expr::Kind::BINOP);
    EXPECT_EQ(e.op, Tok::LT);                 // relation at the top
    EXPECT_EQ(e.lhs->op, Tok::PLUS);          // + above *
    EXPECT_EQ(e.lhs->rhs->op, Tok::STAR);
}

TEST(ParserTest, Errors)
{
    EXPECT_FALSE(parseProgram("begin end.").ok());
    EXPECT_FALSE(parseProgram("program p begin end.").ok());
    EXPECT_FALSE(parseProgram(
        "program p; begin x := ; end.").ok());
    EXPECT_FALSE(parseProgram(
        "program p; var a: array [5..2] of integer; begin end.").ok());
    // `if x then end` is a legal empty statement in Pascal.
    EXPECT_TRUE(parseProgram(
        "program p; begin if x then end.").ok());
    EXPECT_FALSE(parseProgram(
        "program p; begin if then x := 1 end.").ok());
    EXPECT_FALSE(parseProgram(
        "program p; begin while do x := 1 end.").ok());
}

// --------------------------------------------------------------- Sema

TEST(Sema, ErrorsDetected)
{
    auto check = [](const char *src) {
        auto ast = parseProgram(src);
        ASSERT_TRUE(ast.ok()) << ast.error().str();
        ProgramAst p = ast.take();
        EXPECT_FALSE(analyze(p, Layout::WORD_ALLOCATED).ok()) << src;
    };
    check("program p; begin x := 1; end.");              // undeclared
    check("program p; var a: integer; begin a := 'c'; end.");
    check("program p; var a: integer; begin a[1] := 2; end.");
    check("program p; var a: array [0..3] of integer;\n"
          "begin a := 1; end.");                          // array scalar
    check("program p; const c = 3; begin c := 4; end.");
    check("program p; var a: integer;\n"
          "begin if a then a := 1; end.");                // non-boolean
    check("program p; var a, a: integer; begin end.");    // duplicate
    check("program p;\n"
          "function f(x: integer): integer; begin f := x; end;\n"
          "begin f(1, 2); end.");                         // arity
    check("program p; var c: char;\n"
          "begin for c := 1 to 3 do c := c; end.");       // for var type
}

TEST(Sema, LayoutControlsPacking)
{
    const char *src =
        "program p;\n"
        "var w: array [0..9] of char;\n"
        "    q: packed array [0..9] of char;\n"
        "    n: array [0..9] of integer;\n"
        "begin end.";
    auto ast1 = parseProgram(src);
    ProgramAst p1 = ast1.take();
    auto word = analyze(p1, Layout::WORD_ALLOCATED);
    ASSERT_TRUE(word.ok());
    EXPECT_FALSE(word.value().global_scope.at("w")->byte_packed);
    EXPECT_TRUE(word.value().global_scope.at("q")->byte_packed);
    EXPECT_FALSE(word.value().global_scope.at("n")->byte_packed);
    EXPECT_EQ(word.value().global_scope.at("w")->sizeWords(), 10);
    EXPECT_EQ(word.value().global_scope.at("q")->sizeWords(), 3);

    auto ast2 = parseProgram(src);
    ProgramAst p2 = ast2.take();
    auto byte = analyze(p2, Layout::BYTE_ALLOCATED);
    ASSERT_TRUE(byte.ok());
    EXPECT_TRUE(byte.value().global_scope.at("w")->byte_packed);
    EXPECT_TRUE(byte.value().global_scope.at("q")->byte_packed);
    EXPECT_FALSE(byte.value().global_scope.at("n")->byte_packed);
}

// --------------------------------------------- End-to-end execution

/** Compile and run on the pipeline machine; return console output. */
std::string
runProgram(const char *src, Layout layout = Layout::WORD_ALLOCATED,
           uint64_t max_cycles = 20'000'000, bool jump_tables = true)
{
    CompileOptions copts;
    copts.layout = layout;
    copts.jump_tables = jump_tables;
    auto exe = buildExecutable(src, copts);
    EXPECT_TRUE(exe.ok()) << (exe.ok() ? "" : exe.error().str());
    if (!exe.ok())
        return "<compile error>";

    sim::Machine machine;
    machine.load(exe.value().program);
    sim::StopReason reason = machine.cpu().run(max_cycles);
    EXPECT_EQ(reason, sim::StopReason::HALT)
        << machine.cpu().errorMessage();
    std::string pipeline_out = machine.memory().consoleOutput();

    // Differential: legal code on the functional machine must print
    // the same thing.
    auto legal = assembler::link(exe.value().legal_unit);
    EXPECT_TRUE(legal.ok());
    sim::FunctionalRun f = sim::runFunctional(legal.value(), max_cycles);
    EXPECT_EQ(f.reason, sim::StopReason::HALT) << f.cpu->errorMessage();
    EXPECT_EQ(f.memory->consoleOutput(), pipeline_out);

    return pipeline_out;
}

TEST(Execution, WriteIntAndChar)
{
    EXPECT_EQ(runProgram(
        "program p; begin writeint(42); writechar('!'); end."),
        "42!");
    EXPECT_EQ(runProgram(
        "program p; begin writeint(0); writeint(-17); end."),
        "0-17");
    EXPECT_EQ(runProgram(
        "program p; begin writeint(123456); end."),
        "123456");
}

TEST(Execution, ArithmeticAndRuntime)
{
    EXPECT_EQ(runProgram(
        "program p; var a: integer;\n"
        "begin a := 6 * 7; writeint(a);\n"
        "writechar(' ');\n"
        "writeint(100 div 7); writechar(' ');\n"
        "writeint(100 mod 7); writechar(' ');\n"
        "writeint((-100) div 7); writechar(' ');\n"
        "writeint((-100) mod 7);\n"
        "end."),
        "42 14 2 -14 -2");
}

TEST(Execution, ControlFlow)
{
    EXPECT_EQ(runProgram(
        "program p; var i, s: integer;\n"
        "begin\n"
        "  s := 0;\n"
        "  for i := 1 to 10 do s := s + i;\n"
        "  writeint(s); writechar(' ');\n"
        "  s := 0; i := 10;\n"
        "  while i > 0 do begin s := s + i; i := i - 1; end;\n"
        "  writeint(s); writechar(' ');\n"
        "  s := 0; i := 0;\n"
        "  repeat s := s + 1; i := i + 1; until i >= 4;\n"
        "  writeint(s);\n"
        "end."),
        "55 55 4");
}

const char *kCaseProgram =
    "program p; var i: integer;\n"
    "begin\n"
    "  for i := 0 to 6 do\n"
    "    case i of\n"
    "      0: writechar('z');\n"
    "      1, 2: writeint(i * 10);\n"
    "      3: writechar('t');\n"
    "      5: writechar('f')\n"
    "    else writechar('?')\n"
    "    end;\n"
    "end.";

TEST(Execution, CaseJumpTable)
{
    // Dense selectors lower to a jtab dispatch.
    auto compiled = compile(kCaseProgram, CompileOptions{});
    ASSERT_TRUE(compiled.ok()) << compiled.error().str();
    EXPECT_NE(compiled.value().asm_text.find("jtab"), std::string::npos);
    EXPECT_EQ(runProgram(kCaseProgram), "z1020t?f?");
}

TEST(Execution, CaseBranchChain)
{
    // Same program with tables disabled: a compare-and-branch chain
    // must produce identical output.
    CompileOptions copts;
    copts.jump_tables = false;
    auto compiled = compile(kCaseProgram, copts);
    ASSERT_TRUE(compiled.ok()) << compiled.error().str();
    EXPECT_EQ(compiled.value().asm_text.find("jtab"), std::string::npos);
    EXPECT_EQ(runProgram(kCaseProgram, Layout::WORD_ALLOCATED,
                         20'000'000, false),
              "z1020t?f?");
}

TEST(Execution, CaseSparseAndChars)
{
    // Sparse labels stay a branch chain even with tables enabled.
    const char *sparse =
        "program p; var i: integer;\n"
        "begin\n"
        "  i := 100;\n"
        "  case i of\n"
        "    1: writeint(1);\n"
        "    100: writeint(2);\n"
        "    1000: writeint(3)\n"
        "  end;\n"
        "end.";
    auto compiled = compile(sparse, CompileOptions{});
    ASSERT_TRUE(compiled.ok()) << compiled.error().str();
    EXPECT_EQ(compiled.value().asm_text.find("jtab"), std::string::npos);
    EXPECT_EQ(runProgram(sparse), "2");

    // Char selectors and named constants work as labels.
    EXPECT_EQ(runProgram(
        "program p; const star = '*'; var c: char;\n"
        "begin\n"
        "  c := '*';\n"
        "  case c of\n"
        "    'a': writeint(1);\n"
        "    'b': writeint(2);\n"
        "    'c': writeint(3);\n"
        "    star: writeint(4)\n"
        "  else writeint(9)\n"
        "  end;\n"
        "end."),
        "4");

    // Selector outside every label with no else: falls through.
    EXPECT_EQ(runProgram(
        "program p; var i: integer;\n"
        "begin\n"
        "  i := 4;\n"
        "  case i of\n"
        "    0: writeint(0); 1: writeint(1);\n"
        "    2: writeint(2); 3: writeint(3)\n"
        "  end;\n"
        "  writechar('.');\n"
        "end."),
        ".");
}

TEST(Execution, CaseNegativeLabels)
{
    EXPECT_EQ(runProgram(
        "program p; var i: integer;\n"
        "begin\n"
        "  for i := 0 to 4 do\n"
        "    case i - 2 of\n"
        "      -2: writechar('a');\n"
        "      -1: writechar('b');\n"
        "      0: writechar('c');\n"
        "      1: writechar('d')\n"
        "    else writechar('e')\n"
        "    end;\n"
        "end."),
        "abcde");
}

TEST(Sema, CaseErrors)
{
    auto expectError = [](const char *src) {
        auto r = compile(src, CompileOptions{});
        EXPECT_FALSE(r.ok()) << src;
    };
    // Duplicate label.
    expectError("program p; var i: integer; begin case i of "
                "1: writeint(1); 1: writeint(2) end; end.");
    // Label/selector type mismatch.
    expectError("program p; var i: integer; begin case i of "
                "'a': writeint(1) end; end.");
    // Boolean selector.
    expectError("program p; var b: boolean; begin case b of "
                "1: writeint(1) end; end.");
    // Non-constant label.
    expectError("program p; var i, j: integer; begin case i of "
                "j: writeint(1) end; end.");
    // No arms.
    expectError("program p; var i: integer; begin case i of "
                "end; end.");
}

TEST(Execution, IfAndBooleans)
{
    EXPECT_EQ(runProgram(
        "program p; var a, b: integer; f: boolean;\n"
        "begin\n"
        "  a := 3; b := 13;\n"
        "  if (a = 3) or (b = 9) then writechar('y') else writechar('n');\n"
        "  if (a = 3) and (b = 9) then writechar('y') else writechar('n');\n"
        "  if not (a = 4) then writechar('y') else writechar('n');\n"
        "  f := (a = 3) or (b = 13);\n"
        "  if f then writechar('t') else writechar('f');\n"
        "  f := (a < 2) and true;\n"
        "  if f then writechar('t') else writechar('f');\n"
        "end."),
        "ynytf");
}

TEST(Execution, DownToAndNegatives)
{
    EXPECT_EQ(runProgram(
        "program p; var i: integer;\n"
        "begin for i := 3 downto 1 do writeint(i); end."),
        "321");
    EXPECT_EQ(runProgram(
        "program p; var i: integer;\n"
        "begin i := -5; writeint(i + 10); writeint(-i); end."),
        "55");
}

TEST(Execution, FunctionsAndRecursion)
{
    // Recursive Fibonacci: the classic.
    EXPECT_EQ(runProgram(
        "program fib;\n"
        "function fib(n: integer): integer;\n"
        "begin\n"
        "  if n < 2 then fib := n\n"
        "  else fib := fib(n - 1) + fib(n - 2);\n"
        "end;\n"
        "begin writeint(fib(12)); end."),
        "144");
}

TEST(Execution, NestedCallsSpillCorrectly)
{
    // A call inside an expression with live evaluation registers.
    EXPECT_EQ(runProgram(
        "program p;\n"
        "function sq(x: integer): integer;\n"
        "begin sq := x * x; end;\n"
        "function add3(a, b, c: integer): integer;\n"
        "begin add3 := a + b + c; end;\n"
        "begin\n"
        "  writeint(1000 + sq(5) * 2);\n"
        "  writechar(' ');\n"
        "  writeint(add3(sq(2), sq(3) + 1, sq(4)));\n"
        "end."),
        "1050 30");
}

TEST(Execution, WordArrays)
{
    EXPECT_EQ(runProgram(
        "program p;\n"
        "var a: array [0..9] of integer; i: integer;\n"
        "begin\n"
        "  for i := 0 to 9 do a[i] := i * i;\n"
        "  writeint(a[7]); writechar(' '); writeint(a[0] + a[9]);\n"
        "end."),
        "49 81");
}

TEST(Execution, NonZeroLowerBound)
{
    EXPECT_EQ(runProgram(
        "program p;\n"
        "var a: array [5..14] of integer; i: integer;\n"
        "begin\n"
        "  for i := 5 to 14 do a[i] := i;\n"
        "  writeint(a[5] + a[14]);\n"
        "end."),
        "19");
}

/** Character-array workout shared by both layouts. */
constexpr const char *kCharProgram =
    "program chars;\n"
    "var line: packed array [0..15] of char;\n"
    "    copy: array [0..15] of char;\n"
    "    i: integer; c: char;\n"
    "begin\n"
    "  line[0] := 'h'; line[1] := 'i'; line[2] := '!';\n"
    "  for i := 0 to 2 do begin\n"
    "    c := line[i];\n"
    "    copy[i] := c;\n"
    "  end;\n"
    "  for i := 0 to 2 do writechar(copy[i]);\n"
    "  writechar(line[1]);\n"
    "end.";

TEST(Execution, PackedCharsWordLayout)
{
    EXPECT_EQ(runProgram(kCharProgram, Layout::WORD_ALLOCATED), "hi!i");
}

TEST(Execution, PackedCharsByteLayout)
{
    EXPECT_EQ(runProgram(kCharProgram, Layout::BYTE_ALLOCATED), "hi!i");
}

TEST(Execution, OrdChr)
{
    EXPECT_EQ(runProgram(
        "program p; var c: char; n: integer;\n"
        "begin\n"
        "  c := 'a'; n := ord(c) + 1; c := chr(n);\n"
        "  writechar(c); writeint(ord('0'));\n"
        "end."),
        "b48");
}

TEST(Execution, LocalArrays)
{
    EXPECT_EQ(runProgram(
        "program p;\n"
        "procedure work;\n"
        "var buf: array [0..4] of integer; i: integer;\n"
        "begin\n"
        "  for i := 0 to 4 do buf[i] := 10 - i;\n"
        "  writeint(buf[0] + buf[4]);\n"
        "end;\n"
        "begin work; end."),
        "16");
}

TEST(Execution, GlobalsSharedAcrossRoutines)
{
    EXPECT_EQ(runProgram(
        "program p;\n"
        "var counter: integer;\n"
        "procedure bump; begin counter := counter + 1; end;\n"
        "begin\n"
        "  counter := 0; bump; bump; bump; writeint(counter);\n"
        "end."),
        "3");
}

TEST(Execution, ReorgAnnotationsSurviveScheduling)
{
    CompileOptions copts;
    auto exe = buildExecutable(kCharProgram, copts);
    ASSERT_TRUE(exe.ok()) << exe.error().str();
    // The final unit must still carry 8-bit reference annotations for
    // the packed array accesses.
    int byte_refs = 0, word_refs = 0;
    for (const auto &item : exe.value().final_unit.items) {
        if (item.ref_size == 8)
            ++byte_refs;
        if (item.ref_size == 32)
            ++word_refs;
    }
    EXPECT_GT(byte_refs, 0);
    EXPECT_GT(word_refs, 0);
}

TEST(Execution, ReorganizerImprovesCompiledCode)
{
    const char *src =
        "program p; var i, s: integer; a: array [0..20] of integer;\n"
        "begin\n"
        "  s := 0;\n"
        "  for i := 0 to 20 do a[i] := i;\n"
        "  for i := 0 to 20 do s := s + a[i];\n"
        "  writeint(s);\n"
        "end.";
    reorg::ReorgOptions none;
    none.reorder = false;
    none.pack = false;
    none.fill_delay = false;
    auto base = buildExecutable(src, CompileOptions{}, none);
    auto full = buildExecutable(src, CompileOptions{});
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(full.ok());
    EXPECT_LT(full.value().program.size(), base.value().program.size());

    // And both still run correctly.
    for (const auto *exe : {&base.value(), &full.value()}) {
        sim::Machine m;
        m.load(exe->program);
        ASSERT_EQ(m.cpu().run(10'000'000), sim::StopReason::HALT);
        EXPECT_EQ(m.memory().consoleOutput(), "210");
    }
}

TEST(Execution, CompileErrorsSurface)
{
    EXPECT_FALSE(compile("program p; begin x := 1; end.").ok());
    EXPECT_FALSE(
        compile("program p; begin writeint(90000000); end.").ok());
    // Over-21-bit literals fail at code generation.
    auto r = compile(
        "program p; var a: integer; begin a := 10000000; end.");
    EXPECT_FALSE(r.ok());
}

} // namespace
} // namespace mips::plc
