/**
 * @file
 * Reorganizer tests: dependence DAG construction, hazard
 * legalization, scheduling quality, piece packing, the three
 * branch-delay schemes, liveness analysis, and the central
 * differential property — legal code on the interlocked machine
 * equals reorganized code on the interlock-free pipeline — checked on
 * hand-written cases and on randomly generated programs.
 */
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "reorg/dag.h"
#include "reorg/reorganizer.h"
#include "sim/machine.h"
#include "support/rng.h"
#include "verify/tv.h"
#include "verify/verify.h"

namespace mips::reorg {
namespace {

using assembler::Program;
using assembler::Unit;
using isa::Instruction;

Unit
parseUnit(std::string_view src)
{
    auto unit = assembler::parse(src);
    EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().str());
    return unit.take();
}

/** Count no-op words in a unit. */
size_t
countNops(const Unit &unit)
{
    size_t n = 0;
    for (const auto &item : unit.items)
        if (!item.is_data && item.inst.isNop())
            ++n;
    return n;
}

/** Render for failure messages. */
std::string
listing(const Unit &unit)
{
    return assembler::listUnit(unit);
}

// ----------------------------------------------------------------- DAG

TEST(DagTest, RegisterDependences)
{
    Unit u = parseUnit(
        "add r1, #1, r2\n"   // 0
        "add r2, #1, r3\n"   // 1: RAW on r2
        "add r4, #1, r2\n"   // 2: WAW on r2 with 0, WAR with 1
        "add r5, #1, r6\n"); // 3: independent
    Dag dag(u.items);
    EXPECT_TRUE(dag.hasEdge(0, 1));
    EXPECT_TRUE(dag.hasEdge(0, 2));
    EXPECT_TRUE(dag.hasEdge(1, 2));
    EXPECT_FALSE(dag.hasEdge(0, 3));
    EXPECT_FALSE(dag.hasEdge(1, 3));
    EXPECT_FALSE(dag.hasEdge(2, 3));
    EXPECT_EQ(dag.nodes()[3].pred_count, 0);
}

TEST(DagTest, LoDependences)
{
    Unit u = parseUnit(
        "mtlo r1\n"      // 0 writes LO
        "ic r2, r3\n"    // 1 reads LO
        "mtlo r4\n");    // 2 writes LO: WAR with 1, WAW with 0
    Dag dag(u.items);
    EXPECT_TRUE(dag.hasEdge(0, 1));
    EXPECT_TRUE(dag.hasEdge(1, 2));
    EXPECT_TRUE(dag.hasEdge(0, 2));
}

TEST(DagTest, MemoryAliasing)
{
    Unit u = parseUnit(
        "st r1, @100\n"     // 0
        "ld @101, r2\n"     // 1: distinct absolute, no conflict
        "ld @100, r3\n"     // 2: same absolute as 0: conflict
        "st r4, 2(r5)\n"    // 3: unknown vs absolutes: conflict
        "ld 3(r5), r6\n");  // 4: same base r5 (never written),
                            //    different disp: no conflict with 3
    Dag dag(u.items);
    EXPECT_FALSE(dag.hasEdge(0, 1));
    EXPECT_TRUE(dag.hasEdge(0, 2));
    EXPECT_TRUE(dag.hasEdge(0, 3));
    EXPECT_TRUE(dag.hasEdge(1, 3) || dag.hasEdge(2, 3));
    EXPECT_FALSE(dag.hasEdge(3, 4));
}

TEST(DagTest, SameBaseDisambiguationNeedsStableBase)
{
    // The base register is redefined in the block, so displacement
    // disambiguation is unsound and the ops must conflict.
    Unit u = parseUnit(
        "st r1, 2(r5)\n"
        "add r5, #1, r5\n"
        "ld 3(r5), r6\n");
    Dag dag(u.items);
    EXPECT_TRUE(dag.hasEdge(0, 2));
}

TEST(DagTest, LoadsCommute)
{
    Unit u = parseUnit(
        "ld @100, r1\n"
        "ld @100, r2\n");
    Dag dag(u.items);
    EXPECT_FALSE(dag.hasEdge(0, 1));
}

TEST(DagTest, VolatileMmioConflictsAlways)
{
    Unit u = parseUnit(
        "st r1, @0xff000\n"
        "ld @0xff002, r2\n"); // both in the device window
    Dag dag(u.items);
    EXPECT_TRUE(dag.hasEdge(0, 1));
}

TEST(DagTest, SystemStateIsBarrier)
{
    Unit u = parseUnit(
        "add r1, #1, r1\n"
        "mfs sr, r2\n"
        "add r3, #1, r3\n");
    Dag dag(u.items);
    EXPECT_TRUE(dag.hasEdge(0, 1));
    EXPECT_TRUE(dag.hasEdge(1, 2));
}

// ----------------------------------------------- No-op legalization

TEST(Legalize, NopInsertedOnLoadUse)
{
    Unit u = parseUnit(
        "ld @100, r1\n"
        "add r1, #1, r2\n"
        "halt\n");
    ReorgOptions opts;
    opts.reorder = false;
    opts.pack = false;
    opts.fill_delay = false;
    ReorgResult r = reorganize(u, opts);
    ASSERT_EQ(r.unit.items.size(), 4u) << listing(r.unit);
    EXPECT_TRUE(r.unit.items[1].inst.isNop());
    EXPECT_EQ(r.stats.noops_inserted, 1u);
}

TEST(Legalize, BlindPaddingWithoutReorganization)
{
    // Without the reorganizer there is no dependence analysis, so the
    // load is padded even though the next instruction is independent;
    // the reorganization stage is what removes the no-op.
    Unit u = parseUnit(
        "ld @100, r1\n"
        "add r3, #1, r2\n"
        "halt\n");
    ReorgOptions opts;
    opts.reorder = false;
    ReorgResult r = reorganize(u, opts);
    EXPECT_EQ(countNops(r.unit), 1u) << listing(r.unit);

    ReorgResult scheduled = reorganize(u);
    EXPECT_EQ(countNops(scheduled.unit), 0u)
        << listing(scheduled.unit);
}

TEST(Legalize, BranchGetsDelayNops)
{
    Unit u = parseUnit(
        "l: add r1, #1, r1\n"
        "blt r1, #9, l\n"
        "halt\n");
    ReorgOptions opts;
    opts.reorder = false;
    opts.fill_delay = false;
    ReorgResult r = reorganize(u, opts);
    // add, blt, nop, halt
    ASSERT_EQ(r.unit.items.size(), 4u) << listing(r.unit);
    EXPECT_TRUE(r.unit.items[2].inst.isNop());
}

TEST(Legalize, IndirectJumpGetsTwoDelayNops)
{
    Unit u = parseUnit(
        "jmp (r15)\n"
        "x: halt\n");
    ReorgOptions opts;
    opts.reorder = false;
    opts.fill_delay = false;
    ReorgResult r = reorganize(u, opts);
    ASSERT_EQ(r.unit.items.size(), 4u) << listing(r.unit);
    EXPECT_TRUE(r.unit.items[1].inst.isNop());
    EXPECT_TRUE(r.unit.items[2].inst.isNop());
}

// ------------------------------------------------------- Scheduling

TEST(Schedule, IndependentInstructionCoversLoadDelay)
{
    Unit u = parseUnit(
        "ld @100, r1\n"
        "add r1, #1, r2\n"
        "add r5, #1, r6\n" // independent: can cover the delay
        "halt\n");
    ReorgOptions opts;
    opts.pack = false;
    ReorgResult r = reorganize(u, opts);
    EXPECT_EQ(countNops(r.unit), 0u) << listing(r.unit);
}

TEST(Schedule, NopWhenNothingMovable)
{
    Unit u = parseUnit(
        "ld @100, r1\n"
        "add r1, #1, r2\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    EXPECT_EQ(countNops(r.unit), 1u) << listing(r.unit);
}

TEST(Schedule, PackingMergesAluAndMem)
{
    Unit u = parseUnit(
        "add r1, #1, r2\n"
        "ld 3(r4), r5\n"  // independent of the add
        "halt\n");
    ReorgResult r = reorganize(u);
    EXPECT_EQ(r.stats.packed_words, 1u) << listing(r.unit);
    // add|ld merged, halt: 2 words.
    EXPECT_EQ(r.unit.items.size(), 2u);
    EXPECT_TRUE(r.unit.items[0].inst.alu && r.unit.items[0].inst.mem);
}

TEST(Schedule, NoPackingWhenDependent)
{
    Unit u = parseUnit(
        "add r1, #1, r4\n"
        "ld 3(r4), r5\n"  // reads r4 written by the add
        "halt\n");
    ReorgResult r = reorganize(u);
    EXPECT_EQ(r.stats.packed_words, 0u) << listing(r.unit);
}

TEST(Schedule, NoPackingWhenFormatForbids)
{
    Unit u = parseUnit(
        "seteq r1, #1, r2\n" // SET is not packable
        "ld 3(r4), r5\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    EXPECT_EQ(r.stats.packed_words, 0u);
}

TEST(Schedule, PackingDisabledByOption)
{
    Unit u = parseUnit(
        "add r1, #1, r2\n"
        "ld 3(r4), r5\n"
        "halt\n");
    ReorgOptions opts;
    opts.pack = false;
    ReorgResult r = reorganize(u, opts);
    EXPECT_EQ(r.stats.packed_words, 0u);
    EXPECT_EQ(r.unit.items.size(), 3u);
}

TEST(Schedule, NoreorderRegionUntouched)
{
    Unit u = parseUnit(
        ".noreorder\n"
        "ld @100, r1\n"
        "add r1, #1, r2\n" // hazard, but the front end said hands off
        ".reorder\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    ASSERT_EQ(r.unit.items.size(), 3u) << listing(r.unit);
    EXPECT_FALSE(r.unit.items[1].inst.isNop());
}

TEST(Schedule, StoresStayOrderedWithAliasedLoads)
{
    Unit u = parseUnit(
        "st r1, @200\n"
        "ld @200, r2\n"
        "st r2, @201\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    // The ld/st chain cannot be reordered; a nop covers the delay.
    Program p = assembler::link(r.unit).take();
    sim::Machine m;
    m.load(p);
    m.cpu().setReg(1, 42);
    // Re-run manually: set r1 then execute.
    ASSERT_EQ(m.cpu().run(100), sim::StopReason::HALT);
    EXPECT_EQ(m.memory().peek(201), 42u);
}

// --------------------------------------------------- Delay filling

TEST(DelayFill, Scheme1MovesIndependentWordIntoSlot)
{
    Unit u = parseUnit(
        "l: add r1, #1, r1\n"
        "add r5, #1, r6\n"  // independent of the branch: movable
        "blt r1, #3, l\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    EXPECT_EQ(countNops(r.unit), 0u) << listing(r.unit);
    EXPECT_GE(r.stats.slots_filled_move, 1u);
}

TEST(DelayFill, Scheme1RespectsBranchDependence)
{
    // The only candidate computes the branch operand: not movable.
    Unit u = parseUnit(
        "x: add r1, #1, r1\n"
        "blt r1, #3, x\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    EXPECT_EQ(countNops(r.unit), 1u) << listing(r.unit);
    EXPECT_EQ(r.stats.slots_filled_move, 0u);
}

TEST(DelayFill, Scheme2DuplicatesLoopHead)
{
    // Unconditional backward branch: duplicate the target instruction
    // into the slot and branch past it.
    Unit u = parseUnit(
        "movi #100, r9\n"
        "loop: add r1, #1, r1\n"
        "beq r1, r9, out\n"
        "ld @300, r2\n"    // a load: scheme 1 cannot move it
        "bra loop\n"
        "out: halt\n");
    ReorgResult r = reorganize(u);
    EXPECT_GE(r.stats.slots_filled_dup, 1u) << listing(r.unit);
    // Semantics check below in the differential section; here check
    // the slot after "bra" is the duplicated add.
    Program p = assembler::link(r.unit).take();
    sim::FunctionalRun f = sim::runFunctional(p);
    // Functional semantics of the *output* differ from pipeline (the
    // output is pipeline-targeted); just ensure it linked and the
    // duplicate exists.
    size_t adds = 0;
    for (const auto &item : r.unit.items)
        if (!item.is_data && item.inst.alu &&
            item.inst.alu->op == isa::AluOp::ADD &&
            item.inst.alu->rd == 1) {
            ++adds;
        }
    EXPECT_EQ(adds, 2u) << listing(r.unit);
}

TEST(DelayFill, Scheme3HoistsWhenDeadOnTakenPath)
{
    // Figure 4's situation: r2 is dead on the taken path (the target
    // block overwrites it), so the fall-through "sub" may sit in the
    // conditional branch's delay slot.
    Unit u = parseUnit(
        "ld 2(r13), r1\n"
        "ble r1, #1, l11\n"
        "sub r1, #1, r2\n"   // fall-through head; r2 dead at l11
        "st r2, 2(r13)\n"
        "halt\n"
        "l11: movi #0, r2\n" // kills r2
        "st r2, 3(r13)\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    EXPECT_GE(r.stats.slots_filled_hoist, 1u) << listing(r.unit);
}

TEST(DelayFill, Scheme3BlockedWhenLiveOnTakenPath)
{
    // Here the taken path *reads* r2: hoisting would corrupt it.
    Unit u = parseUnit(
        "ld 2(r13), r1\n"
        "ble r1, #1, l11\n"
        "sub r1, #1, r2\n"
        "st r2, 2(r13)\n"
        "halt\n"
        "l11: st r2, 3(r13)\n" // uses r2
        "halt\n");
    ReorgResult r = reorganize(u);
    EXPECT_EQ(r.stats.slots_filled_hoist, 0u) << listing(r.unit);
}

TEST(DelayFill, LoadsNeverEnterSlots)
{
    Unit u = parseUnit(
        "l: add r1, #1, r1\n"
        "ld @100, r6\n"     // independent but a load: not movable
        "blt r1, #3, l\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    for (size_t i = 0; i + 1 < r.unit.items.size(); ++i) {
        const auto &item = r.unit.items[i];
        if (!item.is_data && item.inst.branch) {
            const auto &slot = r.unit.items[i + 1];
            EXPECT_FALSE(slot.inst.isLoad()) << listing(r.unit);
        }
    }
}

// ------------------------------------------------------- Liveness

TEST(LivenessTest, HaltBlockKillsEverything)
{
    Unit u = parseUnit(
        "add r1, #1, r2\n"
        "halt\n");
    auto lv = blockLiveIn(u);
    ASSERT_EQ(lv.size(), 1u);
    // r1 read, nothing else live (halt has no successors).
    EXPECT_EQ(lv[0].second, 1u << 1);
}

TEST(LivenessTest, BranchMergesBothPaths)
{
    Unit u = parseUnit(
        "beq r1, #0, a\n"   // block 0: reads r1
        "mov r2, r4\n"      // block 1 (fallthrough): reads r2
        "halt\n"
        "a: mov r3, r4\n"   // block 2: reads r3
        "halt\n");
    auto lv = blockLiveIn(u);
    ASSERT_EQ(lv.size(), 3u);
    EXPECT_EQ(lv[0].second, (1u << 1) | (1u << 2) | (1u << 3));
    EXPECT_EQ(lv[1].second, 1u << 2);
    EXPECT_EQ(lv[2].second, 1u << 3);
}

TEST(LivenessTest, LoopFixpoint)
{
    Unit u = parseUnit(
        "loop: add r1, r2, r1\n"
        "blt r1, r3, loop\n"
        "halt\n");
    auto lv = blockLiveIn(u);
    // r1, r2, r3 all live into the loop.
    EXPECT_EQ(lv[0].second & 0xe, 0xeu);
}

// ------------------------------------------------ Differential tests

/** Link, run legal on functional machine and reorganized on pipeline,
 *  and compare registers and a memory window. */
void
expectEquivalent(const Unit &legal, const ReorgOptions &opts,
                 uint32_t mem_lo = 500, uint32_t mem_hi = 532,
                 const char *tag = "")
{
    Program ref = assembler::link(legal).take();
    sim::FunctionalRun f = sim::runFunctional(ref);
    ASSERT_EQ(f.reason, sim::StopReason::HALT)
        << tag << ": functional run failed: " << f.cpu->errorMessage();

    ReorgResult r = reorganize(legal, opts);

    // Static oracle: reorganized output must satisfy the software
    // interlock contract before we even run it.
    verify::VerifyReport vr = verify::verifyReorganization(legal, r.unit);
    EXPECT_TRUE(vr.clean())
        << tag << ": static verification failed:\n"
        << verify::reportText(vr, r.unit, "reorganized")
        << listing(r.unit);

    // Second static oracle: the translation validator must *prove* the
    // output equivalent — no errors and no unproven (TV090) regions.
    verify::TvOptions tvopts;
    tvopts.alias = opts.alias;
    verify::VerifyReport tv =
        verify::validateTranslation(legal, r.unit, r.hints, tvopts);
    EXPECT_TRUE(tv.clean() && tv.notes == 0)
        << tag << ": translation validation failed:\n"
        << verify::reportText(tv, r.unit, "reorganized")
        << listing(r.unit);

    Program p = assembler::link(r.unit).take();
    sim::Machine m;
    m.load(p);
    ASSERT_EQ(m.cpu().run(10'000'000), sim::StopReason::HALT)
        << tag << ": pipeline run failed: " << m.cpu().errorMessage()
        << "\n" << listing(r.unit);

    for (int reg = 0; reg < isa::kNumRegs; ++reg) {
        if (reg == isa::kLinkReg)
            continue; // link values legitimately differ (delay slots)
        EXPECT_EQ(m.cpu().reg(reg), f.cpu->reg(reg))
            << tag << ": r" << reg << "\n" << listing(r.unit);
    }
    for (uint32_t a = mem_lo; a < mem_hi; ++a) {
        EXPECT_EQ(m.memory().peek(a), f.memory->peek(a))
            << tag << ": mem[" << a << "]\n" << listing(r.unit);
    }
}

TEST(DifferentialReorg, HazardfulStraightLine)
{
    Unit u = parseUnit(
        "li #500, r13\n"
        "movi #41, r1\n"
        "st r1, 0(r13)\n"
        "ld 0(r13), r2\n"
        "add r2, #1, r3\n"
        "st r3, 1(r13)\n"
        "ld 1(r13), r4\n"
        "add r4, r2, r5\n"
        "st r5, 2(r13)\n"
        "halt\n");
    for (bool reorder : {false, true})
        for (bool pack : {false, true})
            for (bool fill : {false, true}) {
                ReorgOptions opts;
                opts.reorder = reorder;
                opts.pack = pack;
                opts.fill_delay = fill;
                expectEquivalent(u, opts);
            }
}

TEST(DifferentialReorg, LoopWithByteOps)
{
    // Uppercase four bytes of a packed word using xc/ic. The 0x20
    // bias exceeds the 4-bit inline constant, so it sits in r7.
    Unit u = parseUnit(
        "li #500, r13\n"
        "ld @data, r1\n"
        "st r1, 0(r13)\n"
        "movi #32, r7\n"
        "movi #0, r2\n"
        "loop: ld 0(r13), r3\n"
        "xc r2, r3, r4\n"
        "sub r4, r7, r4\n"
        "mtlo r2\n"
        "ic r4, r3\n"
        "st r3, 0(r13)\n"
        "add r2, #1, r2\n"
        "blt r2, #4, loop\n"
        "halt\n"
        "data: .word 0x64636261\n");
    expectEquivalent(u, ReorgOptions{});

    // And check the actual result: "abcd" - 0x20 each = "ABCD".
    ReorgResult r = reorganize(u);
    Program p = assembler::link(r.unit).take();
    sim::Machine m;
    m.load(p);
    ASSERT_EQ(m.cpu().run(100000), sim::StopReason::HALT);
    EXPECT_EQ(m.memory().peek(500), 0x44434241u);
}

TEST(DifferentialReorg, CallsAndReturns)
{
    Unit u = parseUnit(
        "li #500, r13\n"
        "movi #5, r1\n"
        "call double, r15\n"
        "mov r2, r3\n"
        "call double2, r15\n"
        "st r3, 0(r13)\n"
        "st r2, 1(r13)\n"
        "halt\n"
        "double: add r1, r1, r2\n"
        "jmp (r15)\n"
        "double2: add r3, r3, r2\n"
        "jmp (r15)\n");
    ReorgOptions opts;
    expectEquivalent(u, opts);
}

TEST(DifferentialReorg, Figure4Fragment)
{
    // The paper's Figure 4 code shape (with concrete layout): load,
    // conditional branch, arithmetic, stores, and a join.
    Unit u = parseUnit(
        "li #500, r13\n"
        "movi #7, r1\n"
        "st r1, 2(r13)\n"
        "ld 2(r13), r1\n"      // ld Z(ap), r0
        "ble r1, #1, l11\n"    // ble r0, #1, L11
        "sub r1, #1, r2\n"     // sub #1, r0, r2
        "st r2, 2(r13)\n"      // st r2, Z(sp)
        "ld 3(r13), r5\n"      // ld 3(sp), r5
        "add r5, r1, r5\n"     // add r5, r0
        "add r4, #1, r4\n"     // add #1, r4
        "bra l3\n"
        "l11: movi #0, r2\n"
        "st r2, 4(r13)\n"
        "l3: st r4, 5(r13)\n"
        "st r5, 6(r13)\n"
        "halt\n");
    expectEquivalent(u, ReorgOptions{});

    ReorgResult full = reorganize(u);
    ReorgOptions none;
    none.reorder = false;
    none.pack = false;
    none.fill_delay = false;
    ReorgResult base = reorganize(u, none);
    EXPECT_LT(full.unit.items.size(), base.unit.items.size());
}

/**
 * Random structured programs: straight-line segments of ALU and
 * memory traffic over a scratch window, bounded countdown loops, and
 * conditional skips. Terminating by construction. The reorganizer
 * must preserve semantics for every option combination.
 */
TEST(DifferentialReorg, RandomProgramsProperty)
{
    support::Rng rng(20260704);
    for (int trial = 0; trial < 60; ++trial) {
        std::string src;
        src += "li #500, r13\n";
        // Seed registers r1..r7 with small constants.
        for (int reg = 1; reg <= 7; ++reg)
            src += support::strprintf("movi #%d, r%d\n",
                                      static_cast<int>(rng.below(200)),
                                      reg);
        int label = 0;
        int segments = 2 + static_cast<int>(rng.below(4));
        for (int s = 0; s < segments; ++s) {
            switch (rng.below(3)) {
              case 0: { // straight-line mix
                int ops = 3 + static_cast<int>(rng.below(8));
                for (int k = 0; k < ops; ++k) {
                    int rd = 1 + static_cast<int>(rng.below(7));
                    int rs = 1 + static_cast<int>(rng.below(7));
                    int rt = 1 + static_cast<int>(rng.below(7));
                    switch (rng.below(6)) {
                      case 0:
                        src += support::strprintf(
                            "add r%d, r%d, r%d\n", rs, rt, rd);
                        break;
                      case 1:
                        src += support::strprintf(
                            "xor r%d, #%d, r%d\n", rs,
                            static_cast<int>(rng.below(16)), rd);
                        break;
                      case 2:
                        src += support::strprintf(
                            "st r%d, %d(r13)\n", rs,
                            static_cast<int>(rng.below(8)));
                        break;
                      case 3:
                        src += support::strprintf(
                            "ld %d(r13), r%d\n",
                            static_cast<int>(rng.below(8)), rd);
                        break;
                      case 4:
                        src += support::strprintf(
                            "seteq r%d, r%d, r%d\n", rs, rt, rd);
                        break;
                      default:
                        src += support::strprintf(
                            "sub r%d, r%d, r%d\n", rs, rt, rd);
                        break;
                    }
                }
                break;
              }
              case 1: { // bounded countdown loop (r8 dedicated)
                int iters = 1 + static_cast<int>(rng.below(6));
                int rd = 1 + static_cast<int>(rng.below(7));
                src += support::strprintf("movi #%d, r8\n", iters);
                src += support::strprintf("loop%d:\n", label);
                src += support::strprintf("add r%d, #1, r%d\n", rd, rd);
                src += support::strprintf(
                    "st r%d, %d(r13)\n", rd,
                    static_cast<int>(rng.below(8)));
                src += "sub r8, #1, r8\n";
                src += support::strprintf("bgt r8, #0, loop%d\n",
                                          label);
                ++label;
                break;
              }
              default: { // conditional skip
                int rs = 1 + static_cast<int>(rng.below(7));
                src += support::strprintf("bodd r%d, #0, skip%d\n",
                                          rs, label);
                int ops = 1 + static_cast<int>(rng.below(4));
                for (int k = 0; k < ops; ++k) {
                    int rd = 1 + static_cast<int>(rng.below(7));
                    src += support::strprintf("add r%d, #3, r%d\n",
                                              rd, rd);
                }
                src += support::strprintf("skip%d:\n", label);
                ++label;
                break;
              }
            }
        }
        // Dump all registers for comparison.
        for (int reg = 1; reg <= 8; ++reg)
            src += support::strprintf("st r%d, %d(r13)\n", reg,
                                      16 + reg);
        src += "halt\n";

        Unit u = parseUnit(src);
        ReorgOptions opts;
        opts.reorder = rng.chance(0.8);
        opts.pack = rng.chance(0.8);
        opts.fill_delay = rng.chance(0.8);
        expectEquivalent(u, opts, 500, 532,
                         support::strprintf("trial %d", trial).c_str());
    }
}

TEST(ReorgStatsTest, StagesImproveMonotonically)
{
    // A loop-heavy program: each added stage must not increase size.
    Unit u = parseUnit(
        "li #500, r13\n"
        "movi #0, r1\n"
        "movi #0, r2\n"
        "outer: ld 0(r13), r3\n"
        "add r3, r1, r3\n"
        "st r3, 0(r13)\n"
        "ld 1(r13), r4\n"
        "add r4, #1, r4\n"
        "st r4, 1(r13)\n"
        "add r1, #1, r1\n"
        "blt r1, #10, outer\n"
        "halt\n");

    ReorgOptions none;
    none.reorder = false;
    none.pack = false;
    none.fill_delay = false;
    ReorgOptions reorder = none;
    reorder.reorder = true;
    ReorgOptions pack = reorder;
    pack.pack = true;
    ReorgOptions full = pack;
    full.fill_delay = true;

    size_t s0 = reorganize(u, none).unit.items.size();
    size_t s1 = reorganize(u, reorder).unit.items.size();
    size_t s2 = reorganize(u, pack).unit.items.size();
    size_t s3 = reorganize(u, full).unit.items.size();
    EXPECT_LE(s1, s0);
    EXPECT_LE(s2, s1);
    EXPECT_LE(s3, s2);
    EXPECT_LT(s3, s0); // overall there must be a real win
}

TEST(ReorgStatsTest, ImprovementOverBaseline)
{
    ReorgStats a, b;
    b.output_words = 100;
    a.output_words = 80;
    EXPECT_DOUBLE_EQ(a.improvementOver(b), 0.2);
}

} // namespace
} // namespace mips::reorg
