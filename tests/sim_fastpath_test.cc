/**
 * @file
 * Simulator fast-path tests: the predecoded instruction cache must be
 * invalidated by every write that changes memory contents (CPU stores
 * and host-side pokes — self-modifying code), the mapping micro-TLB
 * must drop translations on page-map mutation and usage-bit clearing,
 * and — the core property — running with the fast path disabled (the
 * reference decode/translate-every-cycle path) must produce identical
 * architectural results, statistics, and error messages.
 */
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "plc/driver.h"
#include "sim/machine.h"
#include "workload/corpus.h"

namespace mips::sim {
namespace {

using assembler::assembleOrDie;
using assembler::Program;

/** Encoding of "ldi #22, r2" (position-independent: LONG_IMM). */
uint32_t
ldi22Word()
{
    return assembleOrDie("ldi #22, r2\n").image[0];
}

// --------------------------------------- Predecode-cache invalidation

TEST(FastPathDecodeCache, CpuStoreInvalidatesStaleEntry)
{
    // Iteration 1 executes `target` (ldi #11) and predecodes it, then
    // stores the encoding of "ldi #22, r2" over it; iteration 2 must
    // execute the NEW word. A stale decode-cache entry would leave
    // r2 == 11.
    Program p = assembleOrDie(
        "  ldi #0, r3\n"
        "again:\n"
        "target: ldi #11, r2\n"
        "  ld @data, r1\n"
        "  nop\n"
        "  st r1, @target\n"
        "  add r3, #1, r3\n"
        "  blt r3, #2, again\n"
        "  nop\n"
        "  halt\n"
        "data: nop\n"); // placeholder word, patched below, never runs
    Machine m;
    m.load(p);
    m.memory().poke(p.symbol("data"), ldi22Word());
    ASSERT_EQ(m.cpu().run(), StopReason::HALT);
    EXPECT_EQ(m.cpu().reg(2), 22u);
    EXPECT_EQ(m.cpu().reg(3), 2u);
}

TEST(FastPathDecodeCache, PokeInvalidatesStaleEntry)
{
    Program p = assembleOrDie(
        "target: ldi #11, r2\n"
        "  halt\n");
    Machine m;
    m.load(p);
    ASSERT_EQ(m.cpu().run(), StopReason::HALT);
    ASSERT_EQ(m.cpu().reg(2), 11u); // now predecoded

    // Patch the instruction from the host and re-run WITHOUT reloading
    // (reload would rewrite the old word): the cached decode is stale.
    m.memory().poke(p.symbol("target"), ldi22Word());
    m.cpu().reset(p.origin);
    ASSERT_EQ(m.cpu().run(), StopReason::HALT);
    EXPECT_EQ(m.cpu().reg(2), 22u);
}

TEST(FastPathDecodeCache, IdenticalReloadKeepsCacheWarm)
{
    // Write-invalidation is value-aware and reset() does not flush, so
    // reloading the same image must not cost a single new decode miss.
    Program p = assembleOrDie(
        "  ldi #50, r1\n"
        "loop: sub r1, #1, r1\n"
        "  bgt r1, #0, loop\n"
        "  nop\n"
        "  halt\n");
    Machine m;
    m.load(p);
    ASSERT_EQ(m.cpu().run(), StopReason::HALT);
    uint64_t misses = m.cpu().decodeCacheMisses();
    EXPECT_GT(misses, 0u);
    m.load(p);
    ASSERT_EQ(m.cpu().run(), StopReason::HALT);
    EXPECT_EQ(m.cpu().decodeCacheMisses(), misses);
    EXPECT_GT(m.cpu().decodeCacheHits(), 0u);
}

// --------------------------------------------- Micro-TLB invalidation

TEST(MicroTlb, InstallAndEvictDropCachedTranslations)
{
    MappingUnit mu;
    mu.configure(0, 0);
    mu.installPage(0, 5);
    Translation t = mu.translate(3, false);
    ASSERT_TRUE(t.ok);
    EXPECT_EQ(t.phys, 5u * kPageWords + 3);
    EXPECT_TRUE(mu.translate(4, false).ok); // micro-TLB hit
    EXPECT_EQ(mu.tlbHits(), 1u);

    // Remapping the page must not leave the old frame cached.
    mu.installPage(0, 7);
    t = mu.translate(3, false);
    ASSERT_TRUE(t.ok);
    EXPECT_EQ(t.phys, 7u * kPageWords + 3);

    // Evicting must not leave any translation cached.
    mu.evictPage(0);
    t = mu.translate(3, false);
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.cause, Cause::PAGE_FAULT);

    EXPECT_EQ(mu.translations(), mu.tlbHits() + mu.tlbMisses());
}

TEST(MicroTlb, UsageBitsRecordedAfterClear)
{
    MappingUnit mu;
    mu.configure(0, 0);
    mu.installPage(0, 1);

    ASSERT_TRUE(mu.translate(0, false).ok);
    ASSERT_TRUE(mu.translate(1, true).ok); // TLB hit propagates dirty
    const PageEntry *page = mu.findPage(0);
    ASSERT_NE(page, nullptr);
    EXPECT_TRUE(page->referenced);
    EXPECT_TRUE(page->dirty);

    // clearUsageBits() flushes the TLB, so the next references re-walk
    // the page map and set the bits again instead of hitting a cached
    // entry that assumes they are already recorded.
    mu.clearUsageBits();
    EXPECT_FALSE(page->referenced);
    EXPECT_FALSE(page->dirty);
    ASSERT_TRUE(mu.translate(2, false).ok);
    EXPECT_TRUE(page->referenced);
    EXPECT_FALSE(page->dirty);
    ASSERT_TRUE(mu.translate(3, true).ok);
    EXPECT_TRUE(page->dirty);
}

TEST(MicroTlb, DisabledMatchesEnabledExactly)
{
    // The reference path (TLB off) and the fast path must agree on
    // translations, fault causes, usage bits, and the shared counters.
    auto drive = [](MappingUnit &mu) {
        mu.configure(0, 0);
        mu.installPage(0, 2);
        mu.installPage(kPageWords, 3, true, false); // read-only page
        mu.translate(5, false);
        mu.translate(6, true);
        mu.translate(kPageWords + 1, false);
        mu.translate(kPageWords + 2, true); // write fault: read-only
        mu.translate(3 * kPageWords, false); // fault: not installed
        mu.clearUsageBits();
        mu.translate(7, true);
    };
    MappingUnit with_tlb, without_tlb;
    without_tlb.setTlbEnabled(false);
    drive(with_tlb);
    drive(without_tlb);

    EXPECT_EQ(with_tlb.translations(), without_tlb.translations());
    EXPECT_EQ(with_tlb.faults(), without_tlb.faults());
    for (uint32_t page = 0; page < 2; ++page) {
        const PageEntry *a = with_tlb.findPage(page * kPageWords);
        const PageEntry *b = without_tlb.findPage(page * kPageWords);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        EXPECT_EQ(a->referenced, b->referenced) << "page " << page;
        EXPECT_EQ(a->dirty, b->dirty) << "page " << page;
    }
}

// ------------------------------------------ Fast-vs-reference parity

/** Run `p` on a fresh machine; `mapped` identity-maps all of physical
 *  memory and turns translation on (like the throughput benchmark). */
Machine &
runProgram(Machine &m, const Program &p, bool fast_path,
           bool mapped = false, uint64_t max_cycles = 10'000'000)
{
    m.cpu().enableFastPath(fast_path);
    m.load(p);
    if (mapped) {
        m.mapping().configure(0, 0);
        uint32_t frames = m.memory().size() >> kPageBits;
        for (uint32_t frame = 0; frame < frames; ++frame)
            m.mapping().installPage(frame << kPageBits, frame);
        m.cpu().surprise().map_enable = true;
    }
    m.cpu().clearStats();
    m.cpu().run(max_cycles);
    return m;
}

void
expectParity(Machine &fast, Machine &slow)
{
    EXPECT_TRUE(fast.cpu().stats() == slow.cpu().stats());
    for (int r = 0; r < isa::kNumRegs; ++r)
        EXPECT_EQ(fast.cpu().reg(static_cast<isa::Reg>(r)),
                  slow.cpu().reg(static_cast<isa::Reg>(r)))
            << "r" << r;
    EXPECT_EQ(fast.cpu().pc(), slow.cpu().pc());
    EXPECT_EQ(fast.cpu().errorMessage(), slow.cpu().errorMessage());
    EXPECT_EQ(fast.memory().consoleOutput(),
              slow.memory().consoleOutput());
    EXPECT_EQ(fast.mapping().translations(),
              slow.mapping().translations());
    EXPECT_EQ(fast.mapping().faults(), slow.mapping().faults());
}

TEST(FastPathParity, CompiledPuzzleIdenticalStats)
{
    auto exe = plc::buildExecutable(workload::puzzle0Program().source);
    ASSERT_TRUE(exe.ok());
    Machine fast, slow;
    runProgram(fast, exe.value().program, true);
    runProgram(slow, exe.value().program, false);
    EXPECT_GT(fast.cpu().decodeCacheHits(), 0u);
    EXPECT_EQ(slow.cpu().decodeCacheHits(), 0u); // reference: no cache
    expectParity(fast, slow);
}

TEST(FastPathParity, MappedWorkloadIdenticalStats)
{
    Program p = assembleOrDie(
        "  ldi #300, r1\n"
        "  ldi #4096, r2\n"
        "loop: st r1, (r2+r1)\n"
        "  ld (r2+r1), r4\n"
        "  sub r1, #1, r1\n"
        "  bgt r1, #0, loop\n"
        "  nop\n"
        "  halt\n");
    Machine fast, slow;
    runProgram(fast, p, true, /*mapped=*/true);
    runProgram(slow, p, false, /*mapped=*/true);
    EXPECT_GT(fast.mapping().tlbHits(), 0u);
    EXPECT_EQ(slow.mapping().tlbHits(), 0u); // reference: TLB disabled
    expectParity(fast, slow);
}

TEST(FastPathParity, DelayShadowErrorIdenticalMessage)
{
    // A taken transfer inside another transfer's delay shadow is a
    // SIM_ERROR; the specialized branch handler must produce the exact
    // reference diagnostic.
    Program p = assembleOrDie(
        "  bra out\n"
        "  bra out\n" // executes in the shadow of the first bra
        "out: halt\n");
    Machine fast, slow;
    runProgram(fast, p, true);
    runProgram(slow, p, false);
    EXPECT_FALSE(fast.cpu().errorMessage().empty());
    expectParity(fast, slow);
}

TEST(FastPathParity, TableDispatchIdenticalStats)
{
    // A dispatch loop driven through a jump table: the predecoded
    // path must agree with the reference on every fetch, transfer,
    // and counter.
    Program p = assembleOrDie(
        "  li #500, r13\n"
        "  movi #0, r4\n"     // accumulator
        "  movi #3, r3\n"     // case index, counts down
        "again:\n"
        "  la tab, r2\n"
        "  nop\n"
        "  jtab (r2+r3), tab\n"
        "  nop\n"
        "  nop\n"
        "tab: .word c0\n"
        "  .word c1\n"
        "  .word c2\n"
        "  .word c3\n"
        "c0: st r4, 0(r13)\n"
        "  halt\n"
        "c1: add r4, #1, r4\n"
        "  bra next\n"
        "  nop\n"
        "c2: add r4, #2, r4\n"
        "  bra next\n"
        "  nop\n"
        "c3: add r4, #3, r4\n"
        "  bra next\n"
        "  nop\n"
        "next: sub r3, #1, r3\n"
        "  bra again\n"
        "  nop\n");
    Machine fast, slow;
    runProgram(fast, p, true);
    runProgram(slow, p, false);
    EXPECT_EQ(fast.cpu().reg(4), 6u); // 3 + 2 + 1
    EXPECT_GT(fast.cpu().decodeCacheHits(), 0u);
    expectParity(fast, slow);
}

TEST(FastPathParity, StoreToTableEntryRedirectsDispatch)
{
    // Patch a jump-table entry between two dispatches: the second
    // dispatch must follow the NEW entry on both paths. On the fast
    // path this exercises write-invalidation for table data the same
    // way self-modifying code does for instructions.
    Program p = assembleOrDie(
        "  la tab, r2\n"
        "  movi #0, r3\n"
        "  jtab (r2+r3), tab\n"
        "  nop\n"
        "  nop\n"
        "tab: .word t0\n"
        "  .word t1\n"
        "t0: la t1, r1\n"     // first landing: patch entry 0 to t1
        "  nop\n"
        "  st r1, @tab\n"
        "  jtab (r2+r3), tab\n"
        "  nop\n"
        "  nop\n"
        "  halt\n"            // a stale dispatch would land back here
        "t1: movi #7, r5\n"
        "  halt\n");
    Machine fast, slow;
    runProgram(fast, p, true);
    runProgram(slow, p, false);
    EXPECT_EQ(fast.cpu().reg(5), 7u);
    EXPECT_EQ(slow.cpu().reg(5), 7u);
    expectParity(fast, slow);
}

TEST(FastPathParity, TableFetchOutOfBoundsIdenticalFault)
{
    // A wild index drives the table fetch past physical memory: an
    // ADDRESS_ERROR exception, not a simulator error. No handler is
    // installed, so the fault re-enters at the vector forever —
    // compare a fixed cycle budget like the trap-loop test.
    Program p = assembleOrDie(
        "  la tab, r2\n"
        "  ld @big, r3\n"
        "  nop\n"
        "  jtab (r2+r3), tab\n"
        "  nop\n"
        "  nop\n"
        "tab: .word t0\n"
        "t0: halt\n"
        "big: .word 0x1FFFFF\n");
    Machine fast, slow;
    runProgram(fast, p, true, false, 5000);
    runProgram(slow, p, false, false, 5000);
    EXPECT_GT(fast.cpu().stats().address_errors, 0u);
    expectParity(fast, slow);
}

TEST(FastPathParity, TrapLoopIdenticalStats)
{
    // Traps re-enter at PC 0 forever; compare a fixed cycle budget so
    // the exception entry path (stream capture, privilege swap, TLB
    // flush) is exercised identically in both modes.
    // No explicit loop needed: the trap redirects to PC 0, which is
    // the program origin, restarting the sequence.
    Program p = assembleOrDie(
        "  add r1, #1, r1\n"
        "  trap #3\n"
        "  nop\n"
        "  nop\n");
    Machine fast, slow;
    runProgram(fast, p, true, false, 5000);
    runProgram(slow, p, false, false, 5000);
    EXPECT_GT(fast.cpu().stats().traps, 0u);
    expectParity(fast, slow);
}

} // namespace
} // namespace mips::sim
