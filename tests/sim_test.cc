/**
 * @file
 * Simulator tests: surprise register, mapping unit, memory/devices,
 * pipeline hazard semantics (load delay, branch delay, indirect-jump
 * delay), exception sequencing (priorities, three return addresses,
 * restart), privilege enforcement, demand paging end-to-end, and the
 * functional-vs-pipeline differential property.
 */
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "sim/machine.h"
#include "support/rng.h"

namespace mips::sim {
namespace {

using assembler::assembleOrDie;
using assembler::Program;

// ------------------------------------------------------------- Surprise

TEST(SurpriseReg, PackUnpackRoundTrip)
{
    support::Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        Surprise s;
        s.supervisor = rng.chance(0.5);
        s.prev_supervisor = rng.chance(0.5);
        s.int_enable = rng.chance(0.5);
        s.prev_int_enable = rng.chance(0.5);
        s.ovf_enable = rng.chance(0.5);
        s.prev_ovf_enable = rng.chance(0.5);
        s.map_enable = rng.chance(0.5);
        s.prev_map_enable = rng.chance(0.5);
        s.cause = static_cast<Cause>(rng.below(9));
        s.detail = static_cast<uint16_t>(rng.below(4096));
        EXPECT_EQ(Surprise::unpack(s.pack()), s);
    }
}

TEST(SurpriseReg, EnterAndReturn)
{
    Surprise s;
    s.supervisor = false;
    s.int_enable = true;
    s.map_enable = true;
    s.ovf_enable = true;

    Surprise before = s;
    s.enterException(Cause::TRAP, 42);
    EXPECT_TRUE(s.supervisor);
    EXPECT_FALSE(s.int_enable);
    EXPECT_FALSE(s.map_enable);
    EXPECT_EQ(s.cause, Cause::TRAP);
    EXPECT_EQ(s.detail, 42);
    EXPECT_FALSE(s.prev_supervisor);
    EXPECT_TRUE(s.prev_int_enable);
    EXPECT_TRUE(s.prev_map_enable);

    s.returnFromException();
    EXPECT_EQ(s.supervisor, before.supervisor);
    EXPECT_EQ(s.int_enable, before.int_enable);
    EXPECT_EQ(s.map_enable, before.map_enable);
    EXPECT_EQ(s.ovf_enable, before.ovf_enable);
}

// ------------------------------------------------------------- Mapping

TEST(Mapping, FoldInsertsPid)
{
    MappingUnit mu;
    mu.configure(4, 5);
    // Window = 2^20 words, halves of 2^19.
    EXPECT_EQ(mu.halfWindowWords(), 1u << 19);

    auto low = mu.fold(0x123);
    ASSERT_TRUE(low.has_value());
    EXPECT_EQ(*low, (5u << 20) | 0x123);

    // Top-of-space addresses fold onto the top of the window.
    auto high = mu.fold(0xffffffff);
    ASSERT_TRUE(high.has_value());
    EXPECT_EQ(*high, (5u << 20) | 0xfffff);

    // Between the halves: invalid.
    EXPECT_FALSE(mu.fold(1u << 19).has_value());
    EXPECT_FALSE(mu.fold(0x80000000).has_value());
}

TEST(Mapping, FullSpaceWhenUnsegmented)
{
    MappingUnit mu;
    mu.configure(0, 0);
    EXPECT_EQ(mu.halfWindowWords(), 1u << 23);
    EXPECT_TRUE(mu.fold(0).has_value());
    EXPECT_TRUE(mu.fold((1u << 23) - 1).has_value());
    EXPECT_FALSE(mu.fold(1u << 23).has_value());
}

TEST(Mapping, TranslateResidentAndFaults)
{
    MappingUnit mu;
    mu.configure(2, 1);
    uint32_t sva = (1u << 22) | 0x123; // program addr 0x123 folds here

    // No entry yet: page fault.
    Translation t = mu.translate(0x123, false);
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.cause, Cause::PAGE_FAULT);

    mu.installPage(sva, 7);
    t = mu.translate(0x123, false);
    ASSERT_TRUE(t.ok);
    EXPECT_EQ(t.phys, (7u << kPageBits) | 0x123);

    // Write-protect.
    mu.installPage(sva, 7, true, false);
    EXPECT_TRUE(mu.translate(0x123, false).ok);
    EXPECT_FALSE(mu.translate(0x123, true).ok);

    // Evicted: fault again.
    mu.installPage(sva, 7);
    mu.evictPage(sva);
    EXPECT_FALSE(mu.translate(0x123, false).ok);

    // Address error between halves.
    t = mu.translate(1u << 21, false);
    EXPECT_FALSE(t.ok);
    EXPECT_EQ(t.cause, Cause::ADDRESS_ERROR);
}

TEST(Mapping, UsageBits)
{
    MappingUnit mu;
    mu.configure(0, 0);
    mu.installPage(0, 0);
    mu.translate(5, false);
    ASSERT_NE(mu.findPage(0), nullptr);
    EXPECT_TRUE(mu.findPage(0)->referenced);
    EXPECT_FALSE(mu.findPage(0)->dirty);
    mu.translate(5, true);
    EXPECT_TRUE(mu.findPage(0)->dirty);
    mu.clearUsageBits();
    EXPECT_FALSE(mu.findPage(0)->referenced);
}

// ------------------------------------------------------------- Memory

TEST(Memory, ReadWriteAndImage)
{
    PhysMemory mem(1024);
    mem.write(5, 42);
    EXPECT_EQ(mem.read(5), 42u);
    mem.loadImage(10, {1, 2, 3});
    EXPECT_EQ(mem.peek(12), 3u);
    EXPECT_FALSE(mem.isMmio(5)); // window above this small memory
}

TEST(Memory, ConsoleDevice)
{
    PhysMemory mem;
    uint32_t out = kMmioBase +
        static_cast<uint32_t>(MmioReg::CONSOLE_OUT);
    mem.write(out, 'h');
    mem.write(out, 'i');
    EXPECT_EQ(mem.consoleOutput(), "hi");
    EXPECT_EQ(mem.read(kMmioBase +
              static_cast<uint32_t>(MmioReg::CONSOLE_STATUS)), 1u);
}

TEST(Memory, InterruptController)
{
    PhysMemory mem;
    EXPECT_FALSE(mem.interruptPending());
    mem.raiseDevice(3);
    mem.raiseDevice(7);
    EXPECT_TRUE(mem.interruptPending());
    uint32_t src = kMmioBase + static_cast<uint32_t>(MmioReg::INT_SOURCE);
    EXPECT_EQ(mem.read(src), 3u); // highest priority = lowest id
    mem.write(kMmioBase + static_cast<uint32_t>(MmioReg::INT_ACK), 3);
    EXPECT_EQ(mem.read(src), 7u);
    mem.write(kMmioBase + static_cast<uint32_t>(MmioReg::INT_ACK), 7);
    EXPECT_FALSE(mem.interruptPending());
}

// ------------------------------------------- Pipeline basic execution

/** Run a program on the pipeline machine until halt. */
void
runPipeline(Machine &m, std::string_view src,
            uint64_t max_cycles = 100000)
{
    Program p = assembleOrDie(src);
    m.load(p);
    StopReason r = m.cpu().run(max_cycles);
    EXPECT_EQ(r, StopReason::HALT) << m.cpu().errorMessage();
}

TEST(Pipeline, ArithmeticEndToEnd)
{
    Machine m;
    runPipeline(m,
        "movi #10, r1\n"
        "add r1, #5, r2\n"
        "sub r2, r1, r3\n"
        "rsub r3, #1, r4\n" // r4 = 1 - 5 = -4
        "halt\n");
    EXPECT_EQ(m.cpu().reg(2), 15u);
    EXPECT_EQ(m.cpu().reg(3), 5u);
    EXPECT_EQ(m.cpu().reg(4), static_cast<uint32_t>(-4));
}

TEST(Pipeline, ZeroRegisterHardwired)
{
    Machine m;
    runPipeline(m,
        "movi #7, r0\n"
        "add r0, #3, r1\n"
        "halt\n");
    EXPECT_EQ(m.cpu().reg(0), 0u);
    EXPECT_EQ(m.cpu().reg(1), 3u);
}

TEST(Pipeline, AluResultBypassedToNextInstruction)
{
    Machine m;
    runPipeline(m,
        "movi #1, r1\n"
        "add r1, #1, r1\n" // sees 1 -> 2 (bypass)
        "add r1, #1, r1\n" // sees 2 -> 3
        "halt\n");
    EXPECT_EQ(m.cpu().reg(1), 3u);
}

// ------------------------------------------------- Hazard semantics

TEST(Pipeline, LoadDelaySlotSeesOldValue)
{
    Machine m;
    runPipeline(m,
        "ldi #7, r1\n"      // long immediate: no delay
        "st r1, @50\n"
        "movi #1, r2\n"
        "ld @50, r2\n"      // r2 <- 7, delayed one slot
        "mov r2, r3\n"      // delay slot: old r2 (1)
        "mov r2, r4\n"      // after: new r2 (7)
        "halt\n");
    EXPECT_EQ(m.cpu().reg(3), 1u) << "delay slot must see stale value";
    EXPECT_EQ(m.cpu().reg(4), 7u);
}

TEST(Pipeline, LoadDelayThenAluWawOrder)
{
    // An ALU write in the load's delay slot to the same register must
    // win over the load's later writeback (its WB stage is later).
    Machine m;
    runPipeline(m,
        "ldi #7, r1\n"
        "st r1, @50\n"
        "ld @50, r2\n"
        "movi #9, r2\n"  // delay slot writes r2 too
        "mov r2, r3\n"
        "halt\n");
    EXPECT_EQ(m.cpu().reg(3), 9u);
    EXPECT_EQ(m.cpu().reg(2), 9u);
}

TEST(Pipeline, LongImmediateHasNoDelay)
{
    Machine m;
    runPipeline(m,
        "ldi #1234, r1\n"
        "mov r1, r2\n" // immediately visible
        "halt\n");
    EXPECT_EQ(m.cpu().reg(2), 1234u);
}

TEST(Pipeline, TakenBranchExecutesOneDelaySlot)
{
    Machine m;
    runPipeline(m,
        "movi #0, r1\n"
        "movi #0, r2\n"
        "bra skip\n"
        "movi #1, r1\n"  // delay slot: executes
        "movi #1, r2\n"  // skipped
        "skip: halt\n");
    EXPECT_EQ(m.cpu().reg(1), 1u);
    EXPECT_EQ(m.cpu().reg(2), 0u);
}

TEST(Pipeline, UntakenBranchFallsThrough)
{
    Machine m;
    runPipeline(m,
        "movi #1, r1\n"
        "beq r1, #0, over\n"
        "movi #2, r2\n"
        "movi #3, r3\n"
        "over: halt\n");
    EXPECT_EQ(m.cpu().reg(2), 2u);
    EXPECT_EQ(m.cpu().reg(3), 3u);
}

TEST(Pipeline, BranchComparesStaleLoadInDelay)
{
    // The branch itself sits in the load delay slot: it compares the
    // *old* register value (this is what the reorganizer must avoid).
    Machine m;
    runPipeline(m,
        "ldi #1, r1\n"
        "st r1, @60\n"
        "movi #0, r1\n"
        "ld @60, r1\n"
        "beq r1, #0, zero\n" // sees old r1 == 0 -> taken!
        "nop\n"
        "movi #5, r2\n"      // skipped
        "zero: halt\n");
    EXPECT_EQ(m.cpu().reg(2), 0u);
}

TEST(Pipeline, IndirectJumpHasTwoDelaySlots)
{
    Machine m;
    runPipeline(m,
        ".org 0\n"
        "ldi #6, r5\n"
        "jmp (r5)\n"
        "movi #1, r1\n" // slot 1: executes
        "movi #1, r2\n" // slot 2: executes
        "movi #1, r3\n" // skipped
        "movi #1, r4\n" // skipped
        "halt\n");      // addr 6
    EXPECT_EQ(m.cpu().reg(1), 1u);
    EXPECT_EQ(m.cpu().reg(2), 1u);
    EXPECT_EQ(m.cpu().reg(3), 0u);
    EXPECT_EQ(m.cpu().reg(4), 0u);
}

TEST(Pipeline, DirectCallLinksPastDelaySlot)
{
    Machine m;
    runPipeline(m,
        ".org 0\n"
        "call sub, r15\n" // addr 0: link = 0 + 1 + 1 = 2
        "nop\n"           // delay slot
        "movi #9, r3\n"   // addr 2: return lands here
        "halt\n"
        "sub: mov r15, r7\n"
        "jmp (r15)\n"
        "nop\n"
        "nop\n");
    EXPECT_EQ(m.cpu().reg(7), 2u);
    EXPECT_EQ(m.cpu().reg(3), 9u);
}

TEST(Pipeline, TransferInTakenShadowIsSimError)
{
    Machine m;
    m.load(assembleOrDie(
        "bra a\n"
        "bra b\n" // taken branch in the delay shadow: undefined
        "a: nop\n"
        "b: halt\n"));
    EXPECT_EQ(m.cpu().run(100), StopReason::SIM_ERROR);
    EXPECT_FALSE(m.cpu().errorMessage().empty());
}

TEST(Pipeline, UntakenBranchInShadowIsAllowed)
{
    Machine m;
    runPipeline(m,
        "movi #1, r1\n"
        "bra a\n"
        "beq r1, #0, b\n" // in shadow but not taken: fine
        "b: movi #7, r2\n"
        "a: halt\n");
    EXPECT_EQ(m.cpu().reg(2), 0u);
}

// ----------------------------------------------- Byte manipulation

TEST(Pipeline, PaperLoadByteSequence)
{
    // The paper's load-byte: ld (r0>>2), r1 ; xc r0, r1, r1
    Machine m;
    m.load(assembleOrDie(
        "li #322, r3\n"          // byte pointer: word 80, byte 2
        "ld (r0+r3>>2), r1\n"    // base r0=0 + (322>>2)=80
        "nop\n"                  // load delay
        "xc r3, r1, r1\n"        // extract byte 2
        "halt\n"));
    m.memory().poke(80, 0x64636261); // "abcd" packed
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    EXPECT_EQ(m.cpu().reg(1), static_cast<uint32_t>('c'));
}

TEST(Pipeline, PaperStoreByteSequence)
{
    // The paper's store-byte: ld, mov->lo, ic, st.
    Machine m;
    m.load(assembleOrDie(
        "li #321, r3\n"          // byte 1 of word 80
        "movi #'Z', r4\n"
        "ld (r0+r3>>2), r5\n"
        "mtlo r3\n"              // fills the load delay usefully
        "ic r4, r5\n"
        "st r5, (r0+r3>>2)\n"
        "ld @80, r6\n"
        "nop\n"
        "halt\n"));
    m.memory().poke(80, 0x64636261);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    EXPECT_EQ(m.cpu().reg(6), 0x64635a61u); // "aZcd"
}

// ----------------------------------------------- Free memory cycles

TEST(Pipeline, FreeMemoryCycleAccounting)
{
    Machine m;
    runPipeline(m,
        "movi #1, r1\n"      // free
        "st r1, @50\n"       // data port used
        "ld @50, r2\n"       // data port used
        "nop\n"              // free
        "add r1, #1, r1 | st r1, 2(r0)\n" // packed: data port used
        "halt\n");           // free
    const CpuStats &stats = m.cpu().stats();
    EXPECT_EQ(stats.cycles, 6u);
    EXPECT_EQ(stats.free_data_cycles, 3u);
    EXPECT_EQ(stats.packed_words, 1u);
    EXPECT_DOUBLE_EQ(stats.freeBandwidth(), 0.5);
}

// ----------------------------------------------- Exceptions & system

TEST(Pipeline, TrapDispatchesToZeroWithCause)
{
    // ROM at 0: copy cause fields and halt.
    Program rom = assembleOrDie(
        ".org 0\n"
        "mfs sr, r1\n"
        "halt\n");
    Program prog = assembleOrDie(
        ".org 100\n"
        "movi #3, r2\n"
        "trap #77\n"
        "movi #9, r3\n"
        "halt\n");
    Machine m;
    m.memory().loadImage(rom.origin, rom.image);
    m.memory().loadImage(prog.origin, prog.image);
    m.cpu().reset(100);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);

    Surprise sr = Surprise::unpack(m.cpu().reg(1));
    EXPECT_EQ(sr.cause, Cause::TRAP);
    EXPECT_EQ(sr.detail, 77);
    EXPECT_TRUE(sr.supervisor);
    // Trap completes; RA0 is the instruction after it.
    EXPECT_EQ(m.cpu().returnAddress(0), 102u);
    EXPECT_EQ(m.cpu().returnAddress(1), 103u);
    EXPECT_EQ(m.cpu().returnAddress(2), 104u);
    // movi #9 never ran.
    EXPECT_EQ(m.cpu().reg(3), 0u);
}

TEST(Pipeline, RfeResumesAfterTrap)
{
    Program rom = assembleOrDie(
        ".org 0\n"
        "rfe\n");
    Program prog = assembleOrDie(
        ".org 100\n"
        "movi #1, r1\n"
        "trap #5\n"
        "movi #2, r2\n"
        "halt\n");
    Machine m;
    m.memory().loadImage(rom.origin, rom.image);
    m.memory().loadImage(prog.origin, prog.image);
    m.cpu().reset(100);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    EXPECT_EQ(m.cpu().reg(1), 1u);
    EXPECT_EQ(m.cpu().reg(2), 2u);
    EXPECT_EQ(m.cpu().stats().traps, 1u);
}

TEST(Pipeline, OverflowTrapsWhenEnabledAndInhibitsWrite)
{
    Program rom = assembleOrDie(
        ".org 0\n"
        "mfs sr, r10\n"
        "halt\n");
    // Enable overflow traps: SR with supervisor|ovf_enable = 0x11.
    Program prog = assembleOrDie(
        ".org 100\n"
        "movi #0x11, r1\n"   // 100
        "mts r1, sr\n"       // 101
        "ld @intmax, r2\n"   // 102
        "nop\n"              // 103: load delay
        "add r2, #1, r2\n"   // 104: overflows -> trap, write inhibited
        "halt\n"             // 105
        "intmax: .word 0x7fffffff\n");
    Machine m;
    m.memory().loadImage(rom.origin, rom.image);
    m.memory().loadImage(prog.origin, prog.image);
    m.cpu().reset(100);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    Surprise sr = Surprise::unpack(m.cpu().reg(10));
    EXPECT_EQ(sr.cause, Cause::OVERFLOW);
    // Faulting instruction is restartable: rd unchanged, RA0 = it.
    EXPECT_EQ(m.cpu().reg(2), 0x7fffffffu);
    EXPECT_EQ(m.cpu().returnAddress(0), 104u);
}

TEST(Pipeline, OverflowIgnoredWhenDisabled)
{
    Machine m;
    runPipeline(m,
        "ld @intmax, r2\n"
        "nop\n"
        "add r2, #1, r2\n"
        "halt\n"
        "intmax: .word 0x7fffffff\n");
    EXPECT_EQ(m.cpu().reg(2), 0x80000000u);
    EXPECT_EQ(m.cpu().stats().exceptions, 0u);
}

TEST(Pipeline, FaultInIndirectJumpShadowSavesThreeAddresses)
{
    // The paper's motivating case for three return addresses: an
    // exception on the instruction after an indirect jump must save
    // {offender, successor, branch target}.
    Program rom = assembleOrDie(
        ".org 0\n"
        "mfs ra0, r1\n"
        "mfs ra1, r2\n"
        "mfs ra2, r3\n"
        "halt\n");
    Program prog = assembleOrDie(
        ".org 100\n"
        "not r0, r9\n"     // 100: r9 = 0xffffffff (way out of range)
        "ldi #200, r5\n"   // 101
        "jmp (r5)\n"       // 102: two delay slots (103, 104)
        "movi #1, r6\n"    // 103
        "ld (r9), r7\n"    // 104: out of range -> fault here
        "halt\n");
    Machine m;
    m.memory().loadImage(rom.origin, rom.image);
    m.memory().loadImage(prog.origin, prog.image);
    m.memory().poke(200, isa::encode(isa::Instruction::makeHalt()));
    m.cpu().reset(100);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    EXPECT_EQ(m.cpu().reg(1), 104u); // the offender
    EXPECT_EQ(m.cpu().reg(2), 200u); // then the jump target
    EXPECT_EQ(m.cpu().reg(3), 201u);
}

TEST(Pipeline, RfeResumesNonSequentialStream)
{
    // Fault in an indirect jump's shadow, handler fixes nothing but
    // skips the offender by advancing RA: resume must still follow the
    // saved three-address stream (offender', successor', target').
    Program rom = assembleOrDie(
        ".org 0\n"
        "rfe\n");
    Program prog = assembleOrDie(
        ".org 100\n"
        "li #500, r8\n"
        "ldi #200, r5\n"
        "jmp (r5)\n"        // 102
        "movi #1, r6\n"     // 103 slot 1
        "st r6, (r8)\n"     // 104 slot 2; first run r8 interposed below
        "halt\n");
    Machine m;
    m.memory().loadImage(rom.origin, rom.image);
    m.memory().loadImage(prog.origin, prog.image);
    // Target block at 200: record r6 and halt.
    Program target = assembleOrDie(
        ".org 200\n"
        "mov r6, r9\n"
        "halt\n");
    m.memory().loadImage(target.origin, target.image);
    m.cpu().reset(100);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    // Store executed on retry (r8=500 valid), then the jump target ran.
    EXPECT_EQ(m.memory().peek(500), 1u);
    EXPECT_EQ(m.cpu().reg(9), 1u);
}

TEST(Pipeline, PrivilegedInstructionFaultsInUserMode)
{
    Program rom = assembleOrDie(
        ".org 0\n"
        "mfs sr, r10\n"
        "halt\n");
    // Enter user mode via RFE with prev bits = user.
    Program prog = assembleOrDie(
        ".org 100\n"
        "li #200, r1\n"
        "mts r1, ra0\n"
        "li #201, r1\n"
        "mts r1, ra1\n"
        "li #202, r1\n"
        "mts r1, ra2\n"
        "movi #1, r1\n"   // SR: supervisor, prev = user
        "mts r1, sr\n"
        "rfe\n");
    Program user = assembleOrDie(
        ".org 200\n"
        "movi #5, r2\n"
        "nop\n"
        "mts r2, segpid\n" // privileged -> fault
        "halt\n");
    Machine m;
    m.memory().loadImage(rom.origin, rom.image);
    m.memory().loadImage(prog.origin, prog.image);
    m.memory().loadImage(user.origin, user.image);
    m.cpu().reset(100);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    Surprise sr = Surprise::unpack(m.cpu().reg(10));
    EXPECT_EQ(sr.cause, Cause::PRIVILEGE);
    EXPECT_FALSE(sr.prev_supervisor); // came from user mode
}

TEST(Pipeline, UserModeCannotTouchMmio)
{
    Program rom = assembleOrDie(
        ".org 0\n"
        "mfs sr, r10\n"
        "halt\n");
    Program prog = assembleOrDie(
        ".org 100\n"
        "li #200, r1\n"
        "mts r1, ra0\n"
        "li #201, r1\n"
        "mts r1, ra1\n"
        "li #202, r1\n"
        "mts r1, ra2\n"
        "movi #1, r1\n"
        "mts r1, sr\n"
        "rfe\n");
    Program user = assembleOrDie(
        ".org 200\n"
        "movi #'x', r2\n"
        "li #0xff000, r3\n"
        "st r2, (r3)\n"  // console MMIO from user mode -> fault
        "halt\n");
    Machine m;
    m.memory().loadImage(rom.origin, rom.image);
    m.memory().loadImage(prog.origin, prog.image);
    m.memory().loadImage(user.origin, user.image);
    m.cpu().reset(100);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    EXPECT_EQ(Surprise::unpack(m.cpu().reg(10)).cause, Cause::PRIVILEGE);
    EXPECT_TRUE(m.memory().consoleOutput().empty());
}

TEST(Pipeline, ConsoleFromSupervisor)
{
    Machine m;
    runPipeline(m,
        "movi #'o', r2\n"
        "li #0xff000, r3\n"
        "st r2, (r3)\n"
        "movi #'k', r2\n"
        "st r2, (r3)\n"
        "halt\n");
    EXPECT_EQ(m.memory().consoleOutput(), "ok");
}

TEST(Pipeline, InterruptDispatchAndResume)
{
    // Handler: query INT_SOURCE, ack it, record, rfe.
    Program rom = assembleOrDie(
        ".org 0\n"
        "li #0xff002, r10\n"  // INT_SOURCE
        "ld (r10), r11\n"     // device id
        "nop\n"
        "st r11, 1(r10)\n"    // INT_ACK (0xff003)
        "rfe\n");
    Program prog = assembleOrDie(
        ".org 100\n"
        "movi #5, r1\n"       // SR: supervisor | int_enable = 0b101
        "mts r1, sr\n"
        "movi #0, r2\n"
        "loop: add r2, #1, r2\n"
        "blt r2, #10, loop\n"
        "nop\n"
        "halt\n");
    Machine m;
    m.memory().loadImage(rom.origin, rom.image);
    m.memory().loadImage(prog.origin, prog.image);
    m.cpu().reset(100);
    // Run a few cycles, then pull the interrupt line.
    for (int i = 0; i < 5; ++i)
        m.cpu().step();
    m.memory().raiseDevice(4);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    EXPECT_EQ(m.cpu().reg(11), 4u);     // handler saw device 4
    EXPECT_EQ(m.cpu().reg(2), 10u);     // loop still completed
    EXPECT_FALSE(m.memory().interruptPending());
    EXPECT_GE(m.cpu().stats().exceptions, 1u);
}

TEST(Pipeline, InterruptIgnoredWhenDisabled)
{
    Machine m;
    m.load(assembleOrDie(
        "movi #0, r2\n"
        "loop: add r2, #1, r2\n"
        "blt r2, #10, loop\n"
        "nop\n"
        "halt\n"));
    m.memory().raiseDevice(2);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    EXPECT_EQ(m.cpu().stats().exceptions, 0u);
    EXPECT_TRUE(m.memory().interruptPending()); // still asserted
}

TEST(Pipeline, IllegalInstructionFaults)
{
    Program rom = assembleOrDie(
        ".org 0\n"
        "mfs sr, r10\n"
        "halt\n");
    Machine m;
    m.memory().loadImage(rom.origin, rom.image);
    m.memory().poke(100, 7u << 29); // reserved format
    m.cpu().reset(100);
    ASSERT_EQ(m.cpu().run(100), StopReason::HALT);
    EXPECT_EQ(Surprise::unpack(m.cpu().reg(10)).cause, Cause::ILLEGAL);
}

// -------------------------------------------------- Demand paging

TEST(Paging, DemandPageFaultInstallRetry)
{
    // Kernel dispatch at 0: on page fault, install the page and RFE.
    // The kernel keeps the next free frame in physical word 900.
    Program rom = assembleOrDie(
        ".org 0\n"
        "mfs sr, r10\n"
        "srl r10, #12, r11\n"
        "and r11, #15, r11\n"    // cause
        "beq r11, #5, pf\n"      // PAGE_FAULT?
        "nop\n"
        "halt\n"                  // anything else: give up
        "pf: trap #0\n");         // hand to the host hook below? no:
    // Simpler: the page-fault path is handled by host C++ between
    // steps; see the loop below. The ROM above halts on non-PF.
    (void)rom;

    // Use a pure C++ "OS": run until the CPU lands at PC 0 with a
    // PAGE_FAULT cause, then install the page and RFE by hand.
    Program user = assembleOrDie(
        ".org 0x400\n"           // one page up, mapped 1:1
        "movi #7, r1\n"
        "li #0x800, r2\n"        // next page: not yet resident
        "st r1, (r2)\n"          // faults, then retries
        "ld (r2), r3\n"
        "nop\n"
        "halt\n");
    Machine m;
    m.memory().loadImage(user.origin, user.image);
    m.mapping().configure(4, 3);
    // Map the code page 1:1 (sva of program page 1 -> frame 1).
    uint32_t code_sva = (3u << 20) | 0x400;
    m.mapping().installPage(code_sva, 1);
    m.cpu().reset(0x400);
    m.cpu().surprise().map_enable = true;
    m.cpu().surprise().supervisor = false;

    int faults_handled = 0;
    StopReason reason = StopReason::RUNNING;
    for (int i = 0; i < 1000 && reason == StopReason::RUNNING; ++i) {
        reason = m.cpu().step();
        if (m.cpu().pc() == 0 &&
            m.cpu().surprise().cause == Cause::PAGE_FAULT) {
            ++faults_handled;
            // Install the faulting page (program 0x800 -> frame 2).
            uint32_t sva = (3u << 20) | 0x800;
            m.mapping().installPage(sva, 2);
            // RFE from "hardware": restore and resume saved stream.
            m.cpu().surprise().returnFromException();
            m.cpu().surprise().map_enable = true;
            m.cpu().surprise().supervisor = false;
            m.cpu().setPc(m.cpu().returnAddress(0));
        }
    }
    ASSERT_EQ(reason, StopReason::HALT) << m.cpu().errorMessage();
    EXPECT_EQ(faults_handled, 1);
    EXPECT_EQ(m.cpu().reg(3), 7u);
    // The store landed in frame 2.
    EXPECT_EQ(m.memory().peek(2 * kPageWords), 7u);
}

// ------------------------------------- Functional vs pipeline diff

TEST(Differential, HazardFreeProgramsAgree)
{
    // A program with no load-delay or branch-shadow hazards must give
    // identical results on both machines.
    const char *src =
        "movi #0, r1\n"
        "movi #1, r2\n"
        "movi #0, r3\n"
        "loop: add r1, r2, r4\n"
        "mov r2, r1\n"
        "mov r4, r2\n"
        "add r3, #1, r3\n"
        "blt r3, #15, loop\n"
        "nop\n"               // explicit delay slot no-op
        "st r1, @500\n"
        "halt\n";
    Program p = assembleOrDie(src);

    Machine m;
    m.load(p);
    ASSERT_EQ(m.cpu().run(100000), StopReason::HALT)
        << m.cpu().errorMessage();

    FunctionalRun f = runFunctional(p);
    ASSERT_EQ(f.reason, StopReason::HALT);

    for (int r = 0; r < isa::kNumRegs; ++r)
        EXPECT_EQ(m.cpu().reg(r), f.cpu->reg(r)) << "r" << r;
    EXPECT_EQ(m.memory().peek(500), f.memory->peek(500));
    // Fibonacci(15) sanity.
    EXPECT_EQ(f.memory->peek(500), 610u);
}

TEST(Differential, HazardfulProgramDiverges)
{
    // "Legal code" with a load-use hazard: correct on the interlocked
    // machine, stale on the pipeline. This divergence is the entire
    // reason the reorganizer exists.
    const char *src =
        "ldi #41, r1\n"
        "st r1, @300\n"
        "movi #0, r2\n"
        "ld @300, r2\n"
        "add r2, #1, r3\n" // functional: 42; pipeline: 1
        "halt\n";
    Program p = assembleOrDie(src);

    FunctionalRun f = runFunctional(p);
    ASSERT_EQ(f.reason, StopReason::HALT);
    EXPECT_EQ(f.cpu->reg(3), 42u);

    Machine m;
    m.load(p);
    ASSERT_EQ(m.cpu().run(1000), StopReason::HALT);
    EXPECT_EQ(m.cpu().reg(3), 1u);
}

TEST(Functional, CallLinksNextAddress)
{
    Program p = assembleOrDie(
        ".org 0\n"
        "call sub, r15\n"
        "movi #9, r3\n"
        "halt\n"
        "sub: mov r15, r7\n"
        "jmp (r15)\n");
    FunctionalRun f = runFunctional(p);
    ASSERT_EQ(f.reason, StopReason::HALT);
    EXPECT_EQ(f.cpu->reg(7), 1u); // immediate return point
    EXPECT_EQ(f.cpu->reg(3), 9u);
}

TEST(Functional, TrapHandlerHook)
{
    Program p = assembleOrDie(
        "movi #1, r1\n"
        "trap #7\n"
        "movi #2, r2\n"
        "halt\n");
    PhysMemory mem;
    mem.loadImage(p.origin, p.image);
    FunctionalCpu cpu(mem);
    uint16_t seen = 0;
    cpu.setTrapHandler([&seen](uint16_t code) {
        seen = code;
        return true; // continue
    });
    cpu.reset(p.origin);
    ASSERT_EQ(cpu.run(100), StopReason::HALT);
    EXPECT_EQ(seen, 7);
    EXPECT_EQ(cpu.reg(2), 2u);
}

TEST(Functional, OverflowCountedNotTrapped)
{
    Program p = assembleOrDie(
        "ld @intmax, r1\n"
        "add r1, #1, r1\n"
        "halt\n"
        "intmax: .word 0x7fffffff\n");
    FunctionalRun f = runFunctional(p);
    EXPECT_EQ(f.cpu->overflows(), 1u);
    EXPECT_EQ(f.cpu->reg(1), 0x80000000u);
}

} // namespace
} // namespace mips::sim
