/**
 * @file
 * Unit tests for the support library.
 */
#include <gtest/gtest.h>

#include "support/bits.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/table.h"

namespace mips::support {
namespace {

TEST(Bits, MaskBasics)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(4), 0xfu);
    EXPECT_EQ(mask(32), 0xffffffffu);
    EXPECT_EQ(mask(64), ~0ULL);
}

TEST(Bits, ExtractAndInsert)
{
    EXPECT_EQ(bits(0xdeadbeef, 31, 28), 0xdu);
    EXPECT_EQ(bits(0xdeadbeef, 3, 0), 0xfu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 8), 0xbeu);

    uint64_t w = insertBits(0, 31, 28, 0xd);
    w = insertBits(w, 27, 24, 0xe);
    EXPECT_EQ(bits(w, 31, 24), 0xdeu);

    // Insert must not spill outside the field.
    EXPECT_EQ(insertBits(0, 7, 4, 0xfff), 0xf0u);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(sext(0xf, 4), -1);
    EXPECT_EQ(sext(0x7, 4), 7);
    EXPECT_EQ(sext(0x8, 4), -8);
    EXPECT_EQ(sext(0xff, 8), -1);
    EXPECT_EQ(sext(0x1fffff, 21), -1);
    EXPECT_EQ(sext(0x0fffff, 21), 0x0fffff);
}

TEST(Bits, FitsSignedUnsigned)
{
    EXPECT_TRUE(fitsUnsigned(15, 4));
    EXPECT_FALSE(fitsUnsigned(16, 4));
    EXPECT_TRUE(fitsSigned(7, 4));
    EXPECT_TRUE(fitsSigned(-8, 4));
    EXPECT_FALSE(fitsSigned(8, 4));
    EXPECT_FALSE(fitsSigned(-9, 4));
}

TEST(Bits, AddOverflow)
{
    bool ov = false;
    EXPECT_EQ(addOverflow(1, 2, &ov), 3u);
    EXPECT_FALSE(ov);
    addOverflow(0x7fffffff, 1, &ov);
    EXPECT_TRUE(ov);
    addOverflow(0x80000000, 0xffffffff, &ov); // INT_MIN + (-1)
    EXPECT_TRUE(ov);
    EXPECT_EQ(addOverflow(0xffffffff, 1, &ov), 0u); // -1 + 1 = 0
    EXPECT_FALSE(ov);
}

TEST(Bits, SubOverflow)
{
    bool ov = false;
    EXPECT_EQ(subOverflow(5, 3, &ov), 2u);
    EXPECT_FALSE(ov);
    subOverflow(0x80000000, 1, &ov); // INT_MIN - 1
    EXPECT_TRUE(ov);
    subOverflow(0x7fffffff, 0xffffffff, &ov); // INT_MAX - (-1)
    EXPECT_TRUE(ov);
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(Strings, Split)
{
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");

    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, SplitWhitespace)
{
    auto parts = splitWhitespace("  ld  2(r4),  r1 ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "ld");
    EXPECT_EQ(parts[1], "2(r4),");
    EXPECT_EQ(parts[2], "r1");
}

TEST(Strings, Misc)
{
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_TRUE(startsWith("hello", "he"));
    EXPECT_FALSE(startsWith("he", "hello"));
    EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
    EXPECT_EQ(join({}, ", "), "");
}

TEST(Strprintf, Formats)
{
    EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(strprintf("%.1f%%", 24.82), "24.8%");
}

TEST(BucketDist, CountsAndFractions)
{
    BucketDist d({"a", "b", "c"});
    d.add("a", 3);
    d.add("b");
    EXPECT_EQ(d.total(), 4u);
    EXPECT_EQ(d.count("a"), 3u);
    EXPECT_EQ(d.count("c"), 0u);
    EXPECT_DOUBLE_EQ(d.fraction("a"), 0.75);
    EXPECT_DOUBLE_EQ(d.fraction("c"), 0.0);
}

TEST(BucketDist, EmptyTotal)
{
    BucketDist d({"x"});
    EXPECT_DOUBLE_EQ(d.fraction("x"), 0.0);
}

TEST(MeanStat, WeightedMean)
{
    Mean m;
    m.add(2.0);
    m.add(4.0);
    EXPECT_DOUBLE_EQ(m.value(), 3.0);
    m.add(10.0, 2.0);
    EXPECT_DOUBLE_EQ(m.value(), 6.5);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        int64_t v = r.range(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(TableTest, RenderAligned)
{
    TextTable t("Title");
    t.setHeader({"col1", "column2"});
    t.addRow({"a", "b"});
    t.addSeparator();
    t.addRow({"longer", "x"});
    std::string s = t.render();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("col1"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableTest, PctAndNum)
{
    EXPECT_EQ(TextTable::pct(0.248), "24.8%");
    EXPECT_EQ(TextTable::num(4.156, 3), "4.156");
}

} // namespace
} // namespace mips::support
