/**
 * @file
 * Translation-validator tests.
 *
 *  - ExprArena normalization: the algebraic and store-log rules the
 *    equivalence proofs rest on.
 *  - Validator behavior: clean proofs on correct reorganizations
 *    (including scheme-2 duplication and scheme-3 hoisting), errors on
 *    hand-mutated output, TV090 notes (never a silent pass) when a
 *    region cannot be proven.
 *  - The mutation suite: every deliberate reorganizer bug behind
 *    ReorgOptions::bugs must change the output *and* be caught with a
 *    TV0xx ERROR — no false negatives.
 *  - Gen/kill conformance: the declared register read/write sets and
 *    the symbolic ALU transfer functions are cross-checked against the
 *    functional simulator for every opcode and operand shape, so the
 *    dependence DAG, the hazard checks, and the validator all share
 *    one verified definition.
 *  - The AliasOptions matrix: every corpus program, under every alias
 *    configuration, must be hazard-clean, TV-proven, and
 *    differentially correct.
 */
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "asm/assembler.h"
#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/symbolic.h"
#include "plc/driver.h"
#include "reorg/reorganizer.h"
#include "sim/machine.h"
#include "verify/symexec.h"
#include "verify/tv.h"
#include "verify/verify.h"
#include "workload/corpus.h"

namespace mips::verify {
namespace {

using assembler::Unit;
using reorg::reorganize;
using reorg::ReorgOptions;
using reorg::ReorgResult;

/** Items lack operator==; compare the fields a reorganizer bug can
 *  affect (instruction, target, data). */
bool
sameItems(const Unit &a, const Unit &b)
{
    if (a.items.size() != b.items.size())
        return false;
    for (size_t i = 0; i < a.items.size(); ++i) {
        const assembler::Item &x = a.items[i];
        const assembler::Item &y = b.items[i];
        if (x.is_data != y.is_data || x.target != y.target ||
            x.labels != y.labels)
            return false;
        if (x.is_data ? x.data_value != y.data_value : !(x.inst == y.inst))
            return false;
    }
    return true;
}

Unit
parseUnit(std::string_view src)
{
    auto unit = assembler::parse(src);
    EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().str());
    return unit.take();
}

/** True if the report carries at least one TV0xx ERROR. */
bool
hasTvError(const VerifyReport &report)
{
    for (const Diagnostic &d : report.diagnostics) {
        if (d.severity != Severity::ERROR)
            continue;
        switch (d.code) {
          case Code::TV001: case Code::TV002: case Code::TV003:
          case Code::TV004: case Code::TV005: case Code::TV006:
            return true;
          default:
            break;
        }
    }
    return false;
}

std::string
dump(const VerifyReport &report, const Unit &unit)
{
    return reportText(report, unit, "test");
}

VerifyReport
validate(const Unit &legal, const ReorgResult &r,
         const ReorgOptions &opts = ReorgOptions{})
{
    TvOptions tvopts;
    tvopts.alias = opts.alias;
    return validateTranslation(legal, r.unit, r.hints, tvopts);
}

// --------------------------------------------- arena normalization

TEST(ExprArena, AluIdentitiesNormalize)
{
    ExprArena a;
    ExprRef x = a.input(1);
    EXPECT_EQ(a.add(x, a.konst(0)), x);
    EXPECT_EQ(a.add(x, a.konst(3)), a.add(a.konst(3), x));
    // Constant reassociation: (x+2)+3 == x+5.
    EXPECT_EQ(a.add(a.add(x, a.konst(2)), a.konst(3)),
              a.add(x, a.konst(5)));
    EXPECT_EQ(a.sub(x, x), a.konst(0));
    EXPECT_EQ(a.xor_(x, x), a.konst(0));
    EXPECT_EQ(a.add(a.konst(7), a.konst(8)), a.konst(15));
    EXPECT_EQ(a.cmp(isa::Cond::EQ, x, x), a.konst(1));
    EXPECT_EQ(a.cmp(isa::Cond::NEVER, x, x), a.konst(0));
}

TEST(ExprArena, DisjointStoresNormalizeToOneChain)
{
    ExprArena a;
    ExprRef v1 = a.input(1), v2 = a.input(2);
    ExprRef p = a.konst(100), q = a.konst(200);
    ExprRef m1 = a.memStore(a.memStore(a.memInit(), p, v1), q, v2);
    ExprRef m2 = a.memStore(a.memStore(a.memInit(), q, v2), p, v1);
    EXPECT_EQ(m1, m2) << "provably disjoint stores must commute";

    // Same-base symbolic addresses with distinct displacements too.
    ExprRef base = a.input(3);
    ExprRef b0 = a.add(base, a.konst(0)), b1 = a.add(base, a.konst(1));
    ExprRef m3 = a.memStore(a.memStore(a.memInit(), b0, v1), b1, v2);
    ExprRef m4 = a.memStore(a.memStore(a.memInit(), b1, v2), b0, v1);
    EXPECT_EQ(m3, m4);
}

TEST(ExprArena, VolatileStoresKeepProgramOrder)
{
    ExprArena a; // default volatile window at 0x000ff000
    ExprRef v = a.input(1);
    ExprRef p = a.konst(0x000ff000), q = a.konst(0x000ff001);
    ExprRef m1 = a.memStore(a.memStore(a.memInit(), p, v), q, v);
    ExprRef m2 = a.memStore(a.memStore(a.memInit(), q, v), p, v);
    EXPECT_NE(m1, m2) << "MMIO stores must not commute";
}

TEST(ExprArena, LoadForwardsAndSkipsByAliasDiscipline)
{
    ExprArena a;
    ExprRef v1 = a.input(1), v2 = a.input(2);
    ExprRef m = a.memStore(a.memInit(), a.konst(100), v1);
    // Exact address: forward the stored value.
    EXPECT_EQ(a.memLoad(m, a.konst(100)), v1);
    // Provably disjoint store in between: skip it.
    ExprRef m2 = a.memStore(m, a.konst(101), v2);
    EXPECT_EQ(a.memLoad(m2, a.konst(100)), v1);
    // Possibly-aliasing symbolic store: stay opaque, do not forward.
    ExprRef m3 = a.memStore(m, a.input(3), v2);
    EXPECT_NE(a.memLoad(m3, a.konst(100)), v1);
}

// ------------------------------------------------ validator behavior

const char *kHazardful =
    "li #500, r13\n"
    "movi #41, r1\n"
    "st r1, 0(r13)\n"
    "ld 0(r13), r2\n"
    "add r2, #1, r3\n"
    "st r3, 1(r13)\n"
    "ld 1(r13), r4\n"
    "add r4, r2, r5\n"
    "st r5, 2(r13)\n"
    "halt\n";

TEST(TvValidator, ProvesHazardfulProgramUnderEveryStageToggle)
{
    Unit u = parseUnit(kHazardful);
    for (bool reorder : {false, true})
        for (bool pack : {false, true})
            for (bool fill : {false, true}) {
                ReorgOptions opts;
                opts.reorder = reorder;
                opts.pack = pack;
                opts.fill_delay = fill;
                ReorgResult r = reorganize(u, opts);
                VerifyReport tv = validate(u, r, opts);
                EXPECT_TRUE(tv.clean() && tv.notes == 0)
                    << dump(tv, r.unit);
            }
}

TEST(TvValidator, ProvesScheme2DuplicationViaHints)
{
    Unit u = parseUnit(
        "li #500, r13\n"
        "movi #1, r1\n"
        "go: bra tgt\n"
        "movi #9, r2\n"
        "tgt: add r1, #1, r1\n"
        "st r1, 0(r13)\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    ASSERT_GE(r.stats.slots_filled_dup, 1u)
        << "expected a scheme-2 duplication to exercise the hint path";
    ASSERT_FALSE(r.hints.empty());
    VerifyReport tv = validate(u, r);
    EXPECT_TRUE(tv.clean() && tv.notes == 0) << dump(tv, r.unit);
}

TEST(TvValidator, ProvesScheme3HoistViaTakenPathLiveness)
{
    Unit u = parseUnit(
        "li #500, r13\n"
        "movi #1, r1\n"
        "b0: beq r1, #1, yes\n"
        "movi #7, r3\n"
        "st r3, 0(r13)\n"
        "halt\n"
        "yes: movi #5, r3\n"
        "st r3, 1(r13)\n"
        "halt\n");
    ReorgResult r = reorganize(u);
    VerifyReport tv = validate(u, r);
    EXPECT_TRUE(tv.clean() && tv.notes == 0) << dump(tv, r.unit);
}

TEST(TvValidator, CatchesHandMutatedImmediate)
{
    Unit u = parseUnit(kHazardful);
    ReorgResult r = reorganize(u);
    bool mutated = false;
    for (auto &item : r.unit.items) {
        if (!item.is_data && item.inst.alu &&
            item.inst.alu->op == isa::AluOp::MOVI8) {
            item.inst.alu->imm8 ^= 1; // 41 -> 40
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    VerifyReport tv = validate(u, r);
    EXPECT_TRUE(hasTvError(tv)) << dump(tv, r.unit);
}

TEST(TvValidator, CatchesHandDroppedStore)
{
    Unit u = parseUnit(kHazardful);
    ReorgResult r = reorganize(u);
    bool mutated = false;
    for (auto &item : r.unit.items) {
        if (!item.is_data && item.inst.isStore()) {
            item.inst = isa::Instruction::makeNop();
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    VerifyReport tv = validate(u, r);
    EXPECT_TRUE(hasTvError(tv)) << dump(tv, r.unit);
    EXPECT_GE(tv.countOf(Code::TV002), 1u) << dump(tv, r.unit);
}

/** A two-way table dispatch: sequential semantics select entry 1. */
const char *const kTableDispatch =
    "li #500, r13\n"
    "movi #1, r3\n"
    "la tab, r2\n"
    "jtab (r2+r3), tab\n"
    "tab: .word t0\n"
    ".word t1\n"
    "t0: movi #1, r1\n"
    "st r1, 0(r13)\n"
    "halt\n"
    "t1: movi #2, r1\n"
    "st r1, 0(r13)\n"
    "halt\n";

TEST(TvValidator, ProvesTableDispatchLowering)
{
    Unit u = parseUnit(kTableDispatch);
    ReorgResult r = reorganize(u);
    VerifyReport tv = validate(u, r);
    EXPECT_TRUE(tv.clean() && tv.notes == 0) << dump(tv, r.unit);
}

TEST(TvValidator, CatchesSwappedTableEntries)
{
    // Swap the two .word entries: the fetch terms still agree, so
    // only the entry-sequence comparison (TV008) can catch that an
    // in-bounds index now lands on the wrong arm.
    Unit u = parseUnit(kTableDispatch);
    ReorgResult r = reorganize(u);
    std::vector<size_t> entries;
    for (size_t i = 0; i < r.unit.items.size(); ++i)
        if (r.unit.items[i].is_data && !r.unit.items[i].target.empty())
            entries.push_back(i);
    ASSERT_EQ(entries.size(), 2u);
    std::swap(r.unit.items[entries[0]].target,
              r.unit.items[entries[1]].target);
    VerifyReport tv = validate(u, r);
    EXPECT_GE(tv.countOf(Code::TV008), 1u) << dump(tv, r.unit);
}

TEST(TvValidator, CatchesDroppedTableEntry)
{
    Unit u = parseUnit(kTableDispatch);
    ReorgResult r = reorganize(u);
    bool dropped = false;
    for (size_t i = r.unit.items.size(); i-- > 0;) {
        if (r.unit.items[i].is_data &&
            !r.unit.items[i].target.empty()) {
            r.unit.items.erase(r.unit.items.begin() +
                               static_cast<ptrdiff_t>(i));
            dropped = true;
            break;
        }
    }
    ASSERT_TRUE(dropped);
    VerifyReport tv = validate(u, r);
    EXPECT_GE(tv.countOf(Code::TV008), 1u) << dump(tv, r.unit);
}

TEST(TvValidator, CatchesRetargetedTableFetch)
{
    // Change the dispatch's index register: the fetched-entry term
    // diverges (TV007) even though the table itself is intact.
    Unit u = parseUnit(kTableDispatch);
    ReorgResult r = reorganize(u);
    bool mutated = false;
    for (auto &item : r.unit.items) {
        if (!item.is_data && item.inst.jump &&
            isa::jumpIsTable(item.inst.jump->kind)) {
            item.inst.jump->index = static_cast<isa::Reg>(4);
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    VerifyReport tv = validate(u, r);
    EXPECT_GE(tv.countOf(Code::TV007), 1u) << dump(tv, r.unit);
}

TEST(TvValidator, UnprovenRegionIsANoteNeverASilentPass)
{
    Unit u = parseUnit(kHazardful);
    ReorgResult r = reorganize(u);
    TvOptions tvopts;
    tvopts.limits.max_steps = 2; // far too small for the region
    VerifyReport tv =
        validateTranslation(u, r.unit, r.hints, tvopts);
    EXPECT_GE(tv.countOf(Code::TV090), 1u)
        << "an undecidable region must surface as TV090:\n"
        << dump(tv, r.unit);
}

// ------------------------------------------------- mutation suite

struct BugCase
{
    const char *name;
    bool reorg::ReorgBugs::*flag;
    const char *src;
    bool fill_delay = true;
};

const BugCase kBugCases[] = {
    {"pack_dependent", &reorg::ReorgBugs::pack_dependent,
     "li #500, r13\n"
     "movi #3, r2\n"
     "add r2, #1, r2\n"
     "st r2, 0(r13)\n"
     "halt\n"},
    {"hoist_blind", &reorg::ReorgBugs::hoist_blind,
     "li #500, r13\n"
     "movi #1, r1\n"
     "b0: beq r1, #1, yes\n"
     "movi #7, r3\n"
     "st r3, 0(r13)\n"
     "halt\n"
     "yes: st r3, 1(r13)\n"
     "halt\n"},
    {"alias_blind", &reorg::ReorgBugs::alias_blind,
     "li #500, r13\n"
     "movi #7, r1\n"
     "st r1, 0(r13)\n"
     "ld 0(r13), r2\n"
     "add r2, #1, r3\n"
     "st r3, 1(r13)\n"
     "halt\n"},
    {"slot_overwritten_def", &reorg::ReorgBugs::slot_overwritten_def,
     "li #500, r13\n"
     "go: movi #1, r1\n"
     "movi #2, r1\n"
     "bra out\n"
     "movi #9, r2\n"
     "out: st r1, 0(r13)\n"
     "halt\n"},
    {"drop_load_noop", &reorg::ReorgBugs::drop_load_noop,
     "li #500, r13\n"
     "ld 0(r13), r2\n"
     "add r2, #1, r3\n"
     "st r3, 1(r13)\n"
     "halt\n"},
    {"drop_branch_noop", &reorg::ReorgBugs::drop_branch_noop,
     "li #500, r13\n"
     "movi #5, r1\n"
     "bra out\n"
     "movi #9, r2\n"
     "out: st r1, 0(r13)\n"
     "halt\n",
     /*fill_delay=*/false},
    {"retarget_same_target", &reorg::ReorgBugs::retarget_same_target,
     "li #500, r13\n"
     "movi #1, r1\n"
     "go: bra tgt\n"
     "movi #9, r2\n"
     "tgt: add r1, #1, r1\n"
     "st r1, 0(r13)\n"
     "halt\n"},
    {"dup_skip_second", &reorg::ReorgBugs::dup_skip_second,
     "li #500, r13\n"
     "movi #1, r1\n"
     "go: bra tgt\n"
     "movi #9, r2\n"
     "tgt: add r1, #1, r1\n"
     "add r1, #2, r1\n"
     "st r1, 0(r13)\n"
     "halt\n"},
};

TEST(MutationSuite, EverySeededReorganizerBugIsCaught)
{
    for (const BugCase &c : kBugCases) {
        SCOPED_TRACE(c.name);
        Unit u = parseUnit(c.src);

        ReorgOptions good;
        good.fill_delay = c.fill_delay;
        ReorgResult clean = reorganize(u, good);
        VerifyReport tv_clean = validate(u, clean, good);
        ASSERT_TRUE(tv_clean.clean() && tv_clean.notes == 0)
            << c.name << ": bug-free reorganization must prove clean:\n"
            << dump(tv_clean, clean.unit);

        ReorgOptions bad = good;
        bad.bugs.*(c.flag) = true;
        ReorgResult buggy = reorganize(u, bad);
        ASSERT_FALSE(sameItems(buggy.unit, clean.unit))
            << c.name << ": the seeded bug did not change the output; "
                          "the trigger program misses its stage";
        VerifyReport tv = validate(u, buggy, bad);
        EXPECT_TRUE(hasTvError(tv))
            << c.name << ": seeded bug escaped the validator:\n"
            << dump(tv, buggy.unit);
    }
}

// -------------------------------------- gen/kill + ALU conformance

TEST(Conformance, SymbolicAluMatchesConcreteForEveryOpcode)
{
    const uint32_t vals[] = {0u, 1u, 2u, 3u, 5u, 15u, 31u, 32u,
                             0x7fu, 0x80u, 0xffu, 0x100u,
                             0x7fffffffu, 0x80000000u,
                             0xfffffffeu, 0xffffffffu};
    const uint32_t aux_vals[] = {0u, 1u, 3u, 0x80000000u, 0xffffffffu};
    isa::ConcreteBuilder cb;
    for (int op = 0; op < isa::kNumAluOps; ++op) {
        isa::AluPiece piece;
        piece.op = static_cast<isa::AluOp>(op);
        piece.imm8 = 0xa5;
        int nconds = piece.op == isa::AluOp::SET ? isa::kNumConds : 1;
        for (int c = 0; c < nconds; ++c) {
            piece.cond = static_cast<isa::Cond>(c);
            for (uint32_t rs : vals)
                for (uint32_t src2 : vals)
                    for (uint32_t rd_old : aux_vals)
                        for (uint32_t lo : aux_vals) {
                            isa::AluInputs in{rs, src2, rd_old, lo};
                            isa::AluOutputs ref = isa::evalAlu(piece, in);
                            auto sym = isa::evalAluSymbolic(
                                piece, cb, rs, src2, rd_old, lo);
                            ASSERT_EQ(sym.writes_rd, ref.writes_rd);
                            ASSERT_EQ(sym.writes_lo, ref.writes_lo);
                            if (ref.writes_rd)
                                ASSERT_EQ(sym.rd, ref.rd)
                                    << "op " << op << " cond " << c
                                    << " rs " << rs << " src2 " << src2
                                    << " rd_old " << rd_old << " lo "
                                    << lo;
                            if (ref.writes_lo)
                                ASSERT_EQ(sym.lo, ref.lo)
                                    << "op " << op << " rs " << rs
                                    << " src2 " << src2 << " rd_old "
                                    << rd_old << " lo " << lo;
                        }
        }
    }
}

TEST(Conformance, SymbolicEffectiveAddressMatchesConcrete)
{
    const uint32_t vals[] = {0u, 1u, 100u, 0xff000u, 0x80000000u,
                             0xffffffffu};
    isa::ConcreteBuilder cb;
    for (int mode = 0; mode < 5; ++mode) {
        isa::MemPiece piece;
        piece.mode = static_cast<isa::MemMode>(mode);
        if (piece.mode == isa::MemMode::LONG_IMM)
            continue; // no memory reference
        for (int32_t imm : {0, 8, 300, -4})
            for (uint8_t shift : {0, 2, 31})
                for (uint32_t base : vals)
                    for (uint32_t index : vals) {
                        piece.imm = imm;
                        piece.shift = shift;
                        EXPECT_EQ(isa::memEffectiveAddressSymbolic(
                                      piece, cb, base, index),
                                  isa::memEffectiveAddress(piece, base,
                                                           index));
                    }
    }
}

/** Architectural outcome of executing one instruction. */
struct StepOutcome
{
    std::array<uint32_t, isa::kNumRegs> regs{};
    uint32_t lo = 0;
    uint32_t pc = 0;
    std::vector<std::pair<uint32_t, uint32_t>> mem_writes;

    bool operator==(const StepOutcome &) const = default;
};

constexpr uint32_t kMemWords = 2048;

uint32_t
memFill(uint32_t addr)
{
    return 0xabc00000u + addr * 17u;
}

StepOutcome
runOne(const isa::Instruction &inst,
       const std::array<uint32_t, isa::kNumRegs> &pre)
{
    sim::PhysMemory mem(kMemWords);
    for (uint32_t a = 1; a < 1024; ++a)
        mem.poke(a, memFill(a));
    mem.poke(0, isa::encode(inst));
    sim::FunctionalCpu cpu(mem);
    cpu.reset(0);
    cpu.setTrapHandler([](uint16_t) { return false; });
    for (int r = 1; r < isa::kNumRegs; ++r)
        cpu.setReg(r, pre[r]);
    cpu.step();

    StepOutcome out;
    for (int r = 0; r < isa::kNumRegs; ++r)
        out.regs[r] = cpu.reg(r);
    out.lo = cpu.lo();
    out.pc = cpu.pc();
    for (uint32_t a = 1; a < 1024; ++a)
        if (mem.peek(a) != memFill(a))
            out.mem_writes.emplace_back(a, mem.peek(a));
    return out;
}

/** Every opcode/operand shape of the ISA, as runnable instructions. */
std::vector<isa::Instruction>
allShapes()
{
    using isa::Instruction;
    std::vector<Instruction> shapes;

    for (int op = 0; op < isa::kNumAluOps; ++op) {
        isa::AluPiece a;
        a.op = static_cast<isa::AluOp>(op);
        if (isa::aluWritesRd(a.op))
            a.rd = 3;
        if (isa::aluReadsRs(a.op))
            a.rs = 1;
        if (a.op == isa::AluOp::MOVI8)
            a.imm8 = 77;
        if (a.op == isa::AluOp::SET) {
            for (int c = 0; c < isa::kNumConds; ++c) {
                a.cond = static_cast<isa::Cond>(c);
                a.src2 = isa::Src2::fromReg(2);
                shapes.push_back(Instruction::makeAlu(a));
                a.src2 = isa::Src2::fromImm(5);
                shapes.push_back(Instruction::makeAlu(a));
            }
            continue;
        }
        if (isa::aluReadsSrc2(a.op)) {
            a.src2 = isa::Src2::fromReg(2);
            shapes.push_back(Instruction::makeAlu(a));
            a.src2 = isa::Src2::fromImm(5);
            shapes.push_back(Instruction::makeAlu(a));
        } else {
            shapes.push_back(Instruction::makeAlu(a));
        }
    }

    for (bool is_store : {false, true}) {
        isa::MemPiece m;
        m.is_store = is_store;
        m.rd = 6;
        m.mode = isa::MemMode::ABSOLUTE;
        m.imm = 300;
        shapes.push_back(Instruction::makeMem(m));
        m.mode = isa::MemMode::DISP;
        m.base = 4;
        m.imm = 8;
        shapes.push_back(Instruction::makeMem(m));
        m.mode = isa::MemMode::BASE_INDEX;
        m.imm = 0;
        m.index = 5;
        shapes.push_back(Instruction::makeMem(m));
        m.mode = isa::MemMode::BASE_SHIFT;
        m.shift = 2;
        shapes.push_back(Instruction::makeMem(m));
    }
    {
        isa::MemPiece li;
        li.mode = isa::MemMode::LONG_IMM;
        li.rd = 6;
        li.imm = 1234;
        shapes.push_back(Instruction::makeMem(li));
    }

    {
        // Packed ALU + memory word.
        isa::AluPiece a;
        a.op = isa::AluOp::ADD;
        a.rd = 3;
        a.rs = 1;
        a.src2 = isa::Src2::fromReg(2);
        isa::MemPiece m;
        m.is_store = true;
        m.mode = isa::MemMode::DISP;
        m.base = 4;
        m.imm = 2;
        m.rd = 6;
        EXPECT_TRUE(isa::canPack(a, m));
        shapes.push_back(Instruction::makePacked(a, m));
        m.is_store = false;
        m.rd = 7;
        shapes.push_back(Instruction::makePacked(a, m));
    }

    for (isa::Cond c : {isa::Cond::ALWAYS, isa::Cond::EQ, isa::Cond::LT,
                        isa::Cond::GEU, isa::Cond::ODD}) {
        isa::BranchPiece b;
        b.cond = c;
        b.offset = 3;
        if (c != isa::Cond::ALWAYS) {
            b.rs = 1;
            b.src2 = isa::Src2::fromReg(2);
            shapes.push_back(isa::Instruction::makeBranch(b));
            b.src2 = isa::Src2::fromImm(7);
        }
        shapes.push_back(isa::Instruction::makeBranch(b));
    }

    {
        isa::JumpPiece j;
        j.kind = isa::JumpKind::DIRECT;
        j.target_addr = 5;
        shapes.push_back(isa::Instruction::makeJump(j));
        j.kind = isa::JumpKind::CALL_DIRECT;
        j.link = isa::kLinkReg;
        shapes.push_back(isa::Instruction::makeJump(j));
        j.kind = isa::JumpKind::INDIRECT;
        j.target_reg = 2;
        shapes.push_back(isa::Instruction::makeJump(j));
        j.kind = isa::JumpKind::CALL_INDIRECT;
        shapes.push_back(isa::Instruction::makeJump(j));
    }

    shapes.push_back(isa::Instruction::makeNop());
    shapes.push_back(isa::Instruction::makeHalt());
    shapes.push_back(isa::Instruction::makeTrap(7));

    return shapes;
}

TEST(Conformance, DeclaredRegUseCoversObservedSimulatorBehavior)
{
    std::array<uint32_t, isa::kNumRegs> pre{};
    for (int r = 1; r < isa::kNumRegs; ++r)
        pre[r] = 40u + static_cast<uint32_t>(r) * 13u;

    std::vector<isa::Instruction> shapes = allShapes();
    ASSERT_GE(shapes.size(), 60u);
    for (const isa::Instruction &inst : shapes) {
        std::string why = isa::validate(inst);
        ASSERT_TRUE(why.empty()) << why;
        isa::RegUse ru = isa::regUse(inst);
        StepOutcome base = runOne(inst, pre);

        // Observed *writes* must be declared.
        for (int r = 1; r < isa::kNumRegs; ++r) {
            if (base.regs[r] != pre[r])
                EXPECT_TRUE(ru.writesGpr(r))
                    << "undeclared write of r" << r;
        }
        if (base.lo != 0)
            EXPECT_TRUE(ru.writes_lo) << "undeclared write of LO";
        if (!base.mem_writes.empty())
            EXPECT_TRUE(ru.writes_memory)
                << "undeclared memory write";

        // Observed *reads* must be declared: perturb one register at
        // a time and watch for any change in the outcome beyond the
        // perturbed register carrying its own new value through.
        for (int r = 1; r < isa::kNumRegs; ++r) {
            std::array<uint32_t, isa::kNumRegs> pre2 = pre;
            pre2[r] += 96;
            StepOutcome alt = runOne(inst, pre2);
            bool observed = alt.mem_writes != base.mem_writes ||
                            alt.pc != base.pc || alt.lo != base.lo;
            for (int q = 1; q < isa::kNumRegs; ++q) {
                if (q == r)
                    continue;
                observed |= alt.regs[q] != base.regs[q];
            }
            if (alt.regs[r] != base.regs[r]) {
                bool carry = base.regs[r] == pre[r] &&
                             alt.regs[r] == pre2[r];
                observed |= !carry;
            }
            if (observed)
                EXPECT_TRUE(ru.readsGpr(r))
                    << "undeclared read of r" << r;
        }
    }
}

// ------------------------------------------------ alias option matrix

TEST(AliasMatrix, CorpusProvenAndCorrectUnderEveryAliasConfiguration)
{
    std::vector<workload::CorpusProgram> programs = workload::corpus();
    programs.push_back(workload::fibonacciProgram());
    programs.push_back(workload::puzzle0Program());
    programs.push_back(workload::puzzle1Program());

    const uint32_t volatile_bases[] = {
        0u,                  // everything volatile: no const disambiguation
        reorg::AliasOptions{}.volatile_base, // the production default
        0xffffffffu,         // nothing volatile: maximal disambiguation
    };

    for (uint32_t vb : volatile_bases) {
        for (const auto &program : programs) {
            SCOPED_TRACE(std::string(program.name) + " volatile_base=" +
                         std::to_string(vb));
            ReorgOptions ropts;
            ropts.alias.volatile_base = vb;
            auto exe = plc::buildExecutable(
                program.source, plc::CompileOptions{}, ropts);
            ASSERT_TRUE(exe.ok()) << exe.error().str();

            // Hazard-clean.
            VerifyReport hz = verifyReorganization(
                exe.value().legal_unit, exe.value().final_unit);
            EXPECT_TRUE(hz.clean())
                << dump(hz, exe.value().final_unit);

            // TV-proven.
            TvOptions tvopts;
            tvopts.alias = ropts.alias;
            VerifyReport tv = validateTranslation(
                exe.value().legal_unit, exe.value().final_unit,
                exe.value().tv_hints, tvopts);
            EXPECT_TRUE(tv.clean() && tv.notes == 0)
                << dump(tv, exe.value().final_unit);

            // Differentially correct.
            auto legal = assembler::link(exe.value().legal_unit);
            ASSERT_TRUE(legal.ok());
            sim::FunctionalRun oracle =
                sim::runFunctional(legal.value(), 100'000'000);
            ASSERT_EQ(oracle.reason, sim::StopReason::HALT)
                << oracle.cpu->errorMessage();
            sim::Machine machine;
            machine.load(exe.value().program);
            ASSERT_EQ(machine.cpu().run(100'000'000),
                      sim::StopReason::HALT)
                << machine.cpu().errorMessage();
            EXPECT_EQ(machine.memory().consoleOutput(),
                      oracle.memory->consoleOutput());
        }
    }
}

} // namespace
} // namespace mips::verify
