/**
 * @file
 * Value-range analysis and memory-safety checker tests: the
 * abstract-vs-concrete ALU conformance sweep, interval containment
 * under symbolic inputs, the low-bits alignment lattice, the widening
 * operator, fixpoint entry seeding, one golden test per MS diagnostic
 * code with a clean twin, stack-depth rollups (chain, SCC, recursion),
 * text/JSON rendering, the simulator-oracle coverage matcher, and the
 * pipeline range-stage cache.
 */
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "isa/alu.h"
#include "pipeline/session.h"
#include "verify/cfg.h"
#include "verify/interproc.h"
#include "verify/memsafety.h"
#include "verify/valuerange.h"
#include "workload/corpus.h"

namespace mips::verify {
namespace {

using assembler::Unit;
using isa::AluOp;
using isa::AluPiece;
using isa::Src2;

Unit
parseUnit(std::string_view src)
{
    auto unit = assembler::parse(src);
    EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().str());
    return unit.take();
}

size_t
countCode(const std::vector<Diagnostic> &diags, Code code)
{
    size_t n = 0;
    for (const Diagnostic &d : diags)
        if (d.code == code)
            ++n;
    return n;
}

const Diagnostic *
findCode(const std::vector<Diagnostic> &diags, Code code)
{
    for (const Diagnostic &d : diags)
        if (d.code == code)
            return &d;
    return nullptr;
}

/** Run the full static side on already-parsed asm: CFG, call graph,
 *  memory-safety checks. The unit must outlive the call. */
RangeReport
check(const Unit &u, DiagnosticEngine *diags,
      const RangeCheckOptions &options = {})
{
    Cfg cfg = buildCfg(u, nullptr);
    CallGraph g = buildCallGraph(cfg);
    return checkMemorySafety(cfg, g, options, "test", diags);
}

// ------------------------------------- ALU transfer conformance

/** Every opcode, over a grid of interesting concrete inputs: the
 *  abstract transfer of all-constant inputs must reproduce
 *  isa::evalAlu exactly (same write set, same values). */
TEST(AluRange, ConstantSweepMatchesEvalAlu)
{
    const uint32_t vals[] = {0,          1,          2,          15,
                             0x7f,       0xff,       0x8000,     0x7fffffff,
                             0x80000000, 0xffffffff, 0x12345678};
    const uint32_t olds[] = {0, 0xa5, 0xffffffff};
    const uint32_t los[] = {0, 1, 3};
    size_t checked = 0;
    for (int op = 0; op < isa::kNumAluOps; ++op) {
        AluPiece piece;
        piece.op = static_cast<AluOp>(op);
        piece.rd = static_cast<isa::Reg>(2);
        piece.rs = static_cast<isa::Reg>(1);
        piece.src2 = Src2::fromReg(static_cast<isa::Reg>(3));
        piece.cond = isa::Cond::LT; // exercised by SET only
        piece.imm8 = 0xc3;          // exercised by MOVI8 only
        for (uint32_t rs : vals) {
            for (uint32_t s2 : vals) {
                for (uint32_t old : olds) {
                    for (uint32_t lo : los) {
                        isa::AluOutputs want = isa::evalAlu(
                            piece, {rs, s2, old, lo});
                        AluRangeResult got = evalAluRange(
                            piece, AbsVal::constant(rs),
                            AbsVal::constant(s2), AbsVal::constant(old),
                            AbsVal::constant(lo));
                        ASSERT_EQ(got.writes_rd, want.writes_rd);
                        ASSERT_EQ(got.writes_lo, want.writes_lo);
                        if (want.writes_rd)
                            ASSERT_EQ(got.rd.asConst(),
                                      std::optional<uint32_t>(want.rd))
                                << "op " << op << " rs " << rs
                                << " src2 " << s2;
                        if (want.writes_lo)
                            ASSERT_EQ(got.lo.asConst(),
                                      std::optional<uint32_t>(want.lo))
                                << "op " << op;
                        ++checked;
                    }
                }
            }
        }
    }
    EXPECT_GT(checked, 17u * 11 * 11 * 3 * 3);
}

/** With a genuine interval input, the abstract result must contain
 *  every concrete outcome of the swept values (soundness). */
TEST(AluRange, IntervalResultContainsConcreteSweep)
{
    AbsVal rs;
    rs.lo = 5;
    rs.hi = 9;
    const AluOp ops[] = {AluOp::ADD, AluOp::SUB, AluOp::RSUB,
                         AluOp::AND, AluOp::OR,  AluOp::XOR,
                         AluOp::NOT, AluOp::SLL, AluOp::SRL,
                         AluOp::SRA, AluOp::SET};
    for (AluOp op : ops) {
        AluPiece piece;
        piece.op = op;
        piece.rd = static_cast<isa::Reg>(2);
        piece.rs = static_cast<isa::Reg>(1);
        piece.src2 = Src2::fromImm(3);
        piece.cond = isa::Cond::ODD;
        AluRangeResult got = evalAluRange(piece, rs, AbsVal::constant(3),
                                          AbsVal::top(), AbsVal::top());
        ASSERT_TRUE(got.writes_rd);
        for (uint32_t v = 5; v <= 9; ++v) {
            isa::AluOutputs want = isa::evalAlu(piece, {v, 3, 0, 0});
            EXPECT_TRUE(got.rd.contains(want.rd))
                << "op " << static_cast<int>(op) << " rs " << v
                << " -> " << want.rd;
        }
    }
}

// ------------------------------------------- abstract value domain

TEST(AbsValDomain, JoinKeepsCommonLowBits)
{
    // 8 (0b1000) and 12 (0b1100) agree on their low two bits: the
    // join keeps word alignment provable while widening the interval.
    AbsVal j = joinVals(AbsVal::constant(8), AbsVal::constant(12));
    EXPECT_EQ(j.lo, 8);
    EXPECT_EQ(j.hi, 12);
    EXPECT_EQ(j.low_bits, 2);
    EXPECT_EQ(j.low_val, 0u);
    EXPECT_TRUE(j.contains(8));
    EXPECT_TRUE(j.contains(12));
    // Values inside the interval but off the congruence are excluded.
    EXPECT_FALSE(j.contains(9));

    // 8 and 9 disagree in bit 0: no alignment survives the join.
    AbsVal k = joinVals(AbsVal::constant(8), AbsVal::constant(9));
    EXPECT_EQ(k.low_bits, 0);

    // Joining a value with itself is the identity.
    EXPECT_EQ(joinVals(AbsVal::constant(7), AbsVal::constant(7)),
              AbsVal::constant(7));
}

TEST(AbsValDomain, WidenBlowsMovedBoundsOnly)
{
    AbsVal before;
    before.lo = 4;
    before.hi = 10;
    AbsVal grown = before;
    grown.hi = 12; // upper bound still climbing
    AbsVal w = widenVals(before, grown);
    EXPECT_TRUE(w.widened);
    EXPECT_EQ(w.lo, 4);        // stable bound survives
    EXPECT_EQ(w.hi, kWordMax); // moving bound is blown open

    // A stable state widens to itself, untainted.
    AbsVal s = widenVals(before, before);
    EXPECT_FALSE(s.widened);
    EXPECT_EQ(s.lo, 4);
    EXPECT_EQ(s.hi, 10);
}

// ------------------------------------------------ fixpoint seeding

TEST(RangeFixpoint, EntrySeedIsPostResetState)
{
    // The unit entry doubles as the exception vector; reset and
    // exception dispatch both clear the enables, so the entry's seed
    // must be the post-reset state even though the CFG marks it
    // unknown_pred (regression: an all-UNKNOWN seed there silenced
    // every flag-dependent check).
    Unit u = parseUnit(
        "ld @0x1FFFFF, r1\n"
        "nop\n"
        "halt\n");
    Cfg cfg = buildCfg(u, nullptr);
    ASSERT_TRUE(cfg.nodes[0].unknown_pred);
    RangeAnalysis ranges = analyzeValueRanges(cfg);
    ASSERT_TRUE(ranges.in[0].reachable);
    EXPECT_EQ(ranges.in[0].ovf_enable, Flag::NO);
    EXPECT_EQ(ranges.in[0].map_enable, Flag::NO);
    EXPECT_EQ(ranges.in[0].regs[0].asConst(),
              std::optional<uint32_t>(0u));
    EXPECT_TRUE(ranges.in[0].regs[5].isTop());
}

TEST(RangeFixpoint, LoopCounterWidensAndStaysSilent)
{
    Unit u = parseUnit(
        "add r0, #0, r1\n"        // r1 = 0
        "loop: add r1, #1, r1\n"
        "blt r1, #10, loop\n"
        "nop\n"
        "halt\n");
    Cfg cfg = buildCfg(u, nullptr);
    RangeAnalysis ranges = analyzeValueRanges(cfg);
    EXPECT_EQ(ranges.reachable_items, 5u);
    EXPECT_GE(ranges.widenings, 1u);
}

// ------------------------------------- golden findings per MS code

TEST(Golden, Ms001AbsoluteLoadOutOfBounds)
{
    Unit u = parseUnit(
        "ld @0x1FFFFF, r1\n"
        "nop\n"
        "halt\n");
    DiagnosticEngine diags(&u);
    RangeReport report = check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS001), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS001);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(d->item_index, 0u);
    EXPECT_EQ(report.must_findings + report.may_findings,
              diags.errorCount() + diags.warningCount());
}

TEST(Golden, Ms001HighestValidWordIsClean)
{
    Unit u = parseUnit(
        "ld @0xFFFFF, r1\n"
        "nop\n"
        "halt\n");
    DiagnosticEngine diags(&u);
    RangeReport report = check(u, &diags);
    EXPECT_EQ(diags.diagnostics().size(), 0u);
    EXPECT_EQ(report.checked_refs, 1u);
}

TEST(Golden, Ms001StraddlingIntervalIsMayWarning)
{
    Unit u = parseUnit(
        "ldi #0xFFFF8, r4\n"
        "nop\n"
        "ld @offs, r5\n"
        "nop\n"
        "and r5, #15, r5\n"
        "ld (r4+r5), r6\n"
        "halt\n"
        "offs: .word 12\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS001), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS001);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::WARNING);
}

TEST(Golden, Ms001MaskedIndexOnLowBaseIsClean)
{
    Unit u = parseUnit(
        "ldi #0x8000, r4\n"
        "nop\n"
        "ld @offs, r5\n"
        "nop\n"
        "and r5, #15, r5\n"
        "ld (r4+r5), r6\n"
        "halt\n"
        "offs: .word 12\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS001), 0u);
}

/** The assembler carries no element-size annotation, so MS002's
 *  ref_size == 32 precondition is set programmatically, the way the
 *  PL/C code generator records word-sized packed-array accesses. */
TEST(Golden, Ms002BaseShiftDiscardsLowIndexBits)
{
    Unit u = parseUnit(
        "add r0, #1, r2\n"      // index 1: low bit non-zero
        "ldi #0x100, r4\n"
        "nop\n"
        "ld (r4+r2>>1), r3\n"
        "halt\n");
    for (auto &item : u.items)
        if (!item.is_data && item.inst.mem &&
            item.inst.mem->mode == isa::MemMode::BASE_SHIFT)
            item.ref_size = 32;
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS002), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS002);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::ERROR);
}

TEST(Golden, Ms002AlignedIndexIsClean)
{
    Unit u = parseUnit(
        "add r0, #2, r2\n"      // index 2: low bit zero under >>1
        "ldi #0x100, r4\n"
        "nop\n"
        "ld (r4+r2>>1), r3\n"
        "halt\n");
    for (auto &item : u.items)
        if (!item.is_data && item.inst.mem &&
            item.inst.mem->mode == isa::MemMode::BASE_SHIFT)
            item.ref_size = 32;
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS002), 0u);
}

TEST(Golden, Ms003ReferenceIntoUnmappedGap)
{
    Unit u = parseUnit(
        "add r0, #8, r1\n"
        "mts r1, segbits\n"     // 2^15-word segments
        "ldi #0x41, r2\n"       // priv | map_enable
        "nop\n"
        "mts r2, sr\n"
        "ld @40000, r3\n"       // past the low segment's 32768 words
        "nop\n"
        "halt\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS003), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS003);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::ERROR);
}

TEST(Golden, Ms003LowSegmentReferenceIsClean)
{
    Unit u = parseUnit(
        "add r0, #8, r1\n"
        "mts r1, segbits\n"
        "ldi #0x41, r2\n"
        "nop\n"
        "mts r2, sr\n"
        "ld @100, r3\n"         // well inside the low segment
        "nop\n"
        "halt\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS003), 0u);
}

TEST(Golden, Ms004ProvableOverflowWithTrapsEnabled)
{
    Unit u = parseUnit(
        "ldi #0x11, r1\n"       // priv | ovf_enable
        "nop\n"
        "mts r1, sr\n"
        "ldi #0xFFFFF, r4\n"
        "nop\n"
        "sll r4, #11, r4\n"     // 0x7FFFF800
        "ldi #0x7FF, r5\n"
        "nop\n"
        "or r4, r5, r4\n"       // 0x7FFFFFFF
        "add r4, #1, r6\n"      // INT32_MAX + 1
        "halt\n");
    DiagnosticEngine diags(&u);
    RangeReport report = check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS004), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS004);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(report.checked_alu, 1u);
}

TEST(Golden, Ms004PossibleOverflowIsMayWarning)
{
    Unit u = parseUnit(
        "ldi #0x11, r1\n"
        "nop\n"
        "mts r1, sr\n"
        "ldi #0xFFFFF, r4\n"
        "nop\n"
        "sll r4, #11, r4\n"
        "ldi #0x7F8, r5\n"
        "nop\n"
        "or r4, r5, r4\n"       // 0x7FFFFFF8
        "ld @addend, r5\n"
        "nop\n"
        "and r5, #15, r5\n"     // [0, 15]: sum straddles INT32_MAX
        "add r4, r5, r6\n"
        "halt\n"
        "addend: .word 12\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS004), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS004);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::WARNING);
}

TEST(Golden, Ms004TrapsDisabledIsSilent)
{
    // Same provable overflow, but the enable bit stays at its
    // post-reset NO: the hardware does not trap, so nothing faults.
    Unit u = parseUnit(
        "ldi #0xFFFFF, r4\n"
        "nop\n"
        "sll r4, #11, r4\n"
        "ldi #0x7FF, r5\n"
        "nop\n"
        "or r4, r5, r4\n"
        "add r4, #1, r6\n"
        "halt\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS004), 0u);
}

TEST(Golden, Ms006EveryPathMustFault)
{
    Unit u = parseUnit(
        "ld @sel, r1\n"
        "nop\n"
        "beq r1, #0, left\n"
        "nop\n"
        "st r1, @0x100001\n"
        "halt\n"
        "left: st r1, @0x100002\n"
        "halt\n"
        "sel: .word 0\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS001), 2u);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS006), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS006);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(d->item_index, kNoItem); // unit-wide finding
}

TEST(Golden, Ms006OneCleanPathSuppressesIt)
{
    Unit u = parseUnit(
        "ld @sel, r1\n"
        "nop\n"
        "beq r1, #0, left\n"
        "nop\n"
        "st r1, @0x100001\n"
        "halt\n"
        "left: st r1, @100\n"   // this path exits cleanly
        "halt\n"
        "sel: .word 0\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS001), 1u);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS006), 0u);
}

TEST(Golden, Ms007TableFetchProvablyOutside)
{
    // Index 9 against a two-entry table: the fetch interval is
    // disjoint from the table region on every path.
    Unit u = parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #9, r3\n"
        "jtab (r2+r3), tab\n"
        "nop\n"
        "nop\n"
        "tab: .word t0\n"
        ".word t1\n"
        "t0: halt\n"
        "t1: halt\n");
    DiagnosticEngine diags(&u);
    RangeReport report = check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS007), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS007);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(d->item_index, 3u);
    EXPECT_GT(report.checked_refs, 0u);
}

TEST(Golden, Ms007StraddlingIndexIsMayWarning)
{
    // The join of {0} and {6} straddles the two-entry table: in
    // bounds on one path, out on the other — a MAY finding.
    Unit u = parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #0, r3\n"
        "beq r1, #0, go\n"
        "nop\n"
        "movi #6, r3\n"
        "go: jtab (r2+r3), tab\n"
        "nop\n"
        "nop\n"
        "tab: .word t0\n"
        ".word t1\n"
        "t0: halt\n"
        "t1: halt\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS007), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS007);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->severity, Severity::WARNING);
}

TEST(Golden, Ms007InBoundsIndexIsClean)
{
    Unit u = parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #1, r3\n"
        "jtab (r2+r3), tab\n"
        "nop\n"
        "nop\n"
        "tab: .word t0\n"
        ".word t1\n"
        "t0: halt\n"
        "t1: halt\n");
    DiagnosticEngine diags(&u);
    RangeReport report = check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS007), 0u);
    EXPECT_GT(report.checked_refs, 0u); // the fetch was checked
}

// --------------------------------------------- stack depth (MS005)

const char *const kChainSource =
    "ldi #0x8000, r14\n"
    "nop\n"
    "call f1, r15\n"
    "nop\n"
    "halt\n"
    "f1: sub r14, #8, r14\n"
    "st r15, 0(r14)\n"
    "call f2, r15\n"
    "nop\n"
    "ld 0(r14), r15\n"
    "nop\n"
    "add r14, #8, r14\n"
    "jmp (r15)\n"
    "nop\n"
    "nop\n"
    "f2: sub r14, #8, r14\n"
    "st r15, 0(r14)\n"
    "call f3, r15\n"
    "nop\n"
    "ld 0(r14), r15\n"
    "nop\n"
    "add r14, #8, r14\n"
    "jmp (r15)\n"
    "nop\n"
    "nop\n"
    "f3: sub r14, #8, r14\n"
    "st r15, 0(r14)\n"
    "ld 0(r14), r15\n"
    "nop\n"
    "add r14, #8, r14\n"
    "jmp (r15)\n"
    "nop\n"
    "nop\n";

const StackDepthInfo *
stackNamed(const RangeReport &report, const std::string &name)
{
    for (const StackDepthInfo &s : report.stack)
        if (s.name == name)
            return &s;
    return nullptr;
}

TEST(StackDepth, CallChainRollsUpCalleeFirst)
{
    Unit u = parseUnit(kChainSource);
    RangeCheckOptions options;
    options.stack_budget = 16;
    DiagnosticEngine diags(&u);
    RangeReport report = check(u, &diags, options);
    const StackDepthInfo *f1 = stackNamed(report, "f1");
    const StackDepthInfo *f3 = stackNamed(report, "f3");
    ASSERT_NE(f1, nullptr);
    ASSERT_NE(f3, nullptr);
    EXPECT_TRUE(f1->known);
    EXPECT_EQ(f1->own_words, 8u);
    EXPECT_EQ(f1->rollup_words, 24u);
    EXPECT_EQ(f3->rollup_words, 8u);
    // Only f1's 24-word rollup exceeds the 16-word budget (f2 sits
    // exactly at it).
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS005), 1u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS005);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("'f1'"), std::string::npos) << d->message;
}

TEST(StackDepth, SufficientBudgetIsClean)
{
    Unit u = parseUnit(kChainSource);
    RangeCheckOptions options;
    options.stack_budget = 24;
    DiagnosticEngine diags(&u);
    check(u, &diags, options);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS005), 0u);
}

TEST(StackDepth, ZeroBudgetDisablesMs005)
{
    Unit u = parseUnit(kChainSource);
    DiagnosticEngine diags(&u);
    RangeReport report = check(u, &diags);
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS005), 0u);
    // The rollup is still computed and reported.
    const StackDepthInfo *f1 = stackNamed(report, "f1");
    ASSERT_NE(f1, nullptr);
    EXPECT_EQ(f1->rollup_words, 24u);
}

TEST(StackDepth, MutualRecursionSccIsUnbounded)
{
    Unit u = parseUnit(
        "ldi #0x8000, r14\n"
        "nop\n"
        "call f, r15\n"
        "nop\n"
        "halt\n"
        "f: sub r14, #4, r14\n"
        "st r15, 0(r14)\n"
        "call g, r15\n"
        "nop\n"
        "ld 0(r14), r15\n"
        "nop\n"
        "add r14, #4, r14\n"
        "jmp (r15)\n"
        "nop\n"
        "nop\n"
        "g: sub r14, #4, r14\n"
        "st r15, 0(r14)\n"
        "call f, r15\n"         // back edge: f and g form one SCC
        "nop\n"
        "ld 0(r14), r15\n"
        "nop\n"
        "add r14, #4, r14\n"
        "jmp (r15)\n"
        "nop\n"
        "nop\n");
    RangeCheckOptions options;
    options.stack_budget = 1000;
    DiagnosticEngine diags(&u);
    RangeReport report = check(u, &diags, options);
    const StackDepthInfo *f = stackNamed(report, "f");
    const StackDepthInfo *g = stackNamed(report, "g");
    ASSERT_NE(f, nullptr);
    ASSERT_NE(g, nullptr);
    EXPECT_TRUE(f->unbounded);
    EXPECT_TRUE(g->unbounded);
    // No budget can satisfy a recursive worst case.
    EXPECT_EQ(countCode(diags.diagnostics(), Code::MS005), 2u);
    const Diagnostic *d = findCode(diags.diagnostics(), Code::MS005);
    ASSERT_NE(d, nullptr);
    EXPECT_NE(d->message.find("unbounded"), std::string::npos)
        << d->message;
}

// ------------------------------------------------------- rendering

TEST(Render, TextReportCarriesFindingsAndStackTable)
{
    Unit u = parseUnit(kChainSource);
    RangeCheckOptions options;
    options.stack_budget = 16;
    RangeReport report = check(u, nullptr, options);
    std::string text = rangeText(report);
    EXPECT_NE(text.find("value-range report for test"),
              std::string::npos) << text;
    EXPECT_NE(text.find("1 must (errors)"), std::string::npos) << text;
    EXPECT_NE(text.find("stack budget: 16 words"), std::string::npos)
        << text;
    EXPECT_NE(text.find("f1"), std::string::npos) << text;
}

TEST(Render, JsonReportIsSchema1WithStackArray)
{
    Unit u = parseUnit(
        "ldi #0x8000, r14\n"
        "nop\n"
        "rec: sub r14, #4, r14\n"
        "call rec, r15\n"
        "nop\n"
        "halt\n");
    RangeCheckOptions options;
    options.stack_budget = 8;
    RangeReport report = check(u, nullptr, options);
    std::string json = rangeJson(report);
    EXPECT_NE(json.find("\"schema\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"stack_budget\": 8"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"unbounded\": true"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"rollup_words\": null"), std::string::npos)
        << json;

    // Without a budget the field renders as null, not zero.
    RangeReport unbudgeted = check(u, nullptr, {});
    EXPECT_NE(rangeJson(unbudgeted).find("\"stack_budget\": null"),
              std::string::npos);
}

// ------------------------------------------------ simulator oracle

TEST(Oracle, MustFindingCoversObservedAddressError)
{
    Unit u = parseUnit(
        "ld @0x1FFFFF, r1\n"
        "nop\n"
        "halt\n");
    DiagnosticEngine diags(&u);
    check(u, &diags);
    std::vector<ObservedFault> faults = {
        {kFaultAddressError, 0, 0x1FFFFF}};
    FaultCoverage cov =
        checkFaultCoverage(diags.diagnostics(), 0, u.items.size(),
                           faults);
    EXPECT_EQ(cov.events, 1u);
    EXPECT_EQ(cov.covered, 1u);
    EXPECT_TRUE(cov.ok());
}

TEST(Oracle, PageFaultsAreExempt)
{
    FaultCoverage cov = checkFaultCoverage({}, 0, 4,
                                           {{kFaultPageFault, 1, 0}});
    EXPECT_EQ(cov.exempt, 1u);
    EXPECT_TRUE(cov.ok());
    EXPECT_TRUE(cov.notes.empty());
}

TEST(Oracle, UncoveredEventFailsWithNote)
{
    // No findings at all: an observed address error is a hole in the
    // static analysis and must fail the gate loudly.
    FaultCoverage cov = checkFaultCoverage(
        {}, 0, 4, {{kFaultAddressError, 2, 0x100000}});
    EXPECT_FALSE(cov.ok());
    ASSERT_EQ(cov.notes.size(), 1u);
    EXPECT_NE(cov.notes[0].find("uncovered"), std::string::npos)
        << cov.notes[0];
}

// ------------------------------------------------- pipeline stage

TEST(RangeStage, SessionStageIsCached)
{
    pipeline::Session session;
    pipeline::StageOptions options;
    const std::string source = workload::fibonacciProgram().source;
    auto first = session.valueRange(source, options);
    ASSERT_TRUE(first.ok()) << first.error().str();
    auto second = session.valueRange(source, options);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(first.value().get(), second.value().get());
    pipeline::PipelineStats stats = session.stats();
    size_t range = static_cast<size_t>(pipeline::Stage::VALUE_RANGE);
    EXPECT_EQ(stats.stage[range].misses, 1u);
    EXPECT_GE(stats.stage[range].hits, 1u);
    // Distinct analysis knobs key distinct artifacts.
    options.range.stack_budget = 64;
    auto third = session.valueRange(source, options);
    ASSERT_TRUE(third.ok());
    EXPECT_NE(first.value().get(), third.value().get());
    EXPECT_EQ(third.value()->report.stack_budget, 64u);
}

TEST(RangeStage, CleanCorpusHasNoMustFindings)
{
    pipeline::Session session;
    std::vector<workload::CorpusProgram> programs = workload::corpus();
    pipeline::ChainSpec spec;
    spec.value_range = true;
    std::vector<pipeline::ChainResult> results = pipeline::runAll(
        session, programs, spec, pipeline::StageOptions{}, 4);
    ASSERT_EQ(results.size(), programs.size());
    for (const pipeline::ChainResult &r : results) {
        ASSERT_TRUE(r.ok()) << r.name << ": " << r.error;
        ASSERT_NE(r.range, nullptr) << r.name;
        EXPECT_EQ(r.range->report.must_findings, 0u) << r.name;
        EXPECT_GT(r.range->report.reachable_items, 0u) << r.name;
    }
}

} // namespace
} // namespace mips::verify
