/**
 * @file
 * Static verifier tests: CFG shape, the dataflow framework, one golden
 * test per diagnostic code, clean verification of reorganizer output
 * across the workload corpus, and differential mutation tests showing
 * the verifier has no false negatives on injected hazards.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "asm/assembler.h"
#include "plc/driver.h"
#include "reorg/reorganizer.h"
#include "sim/machine.h"
#include "verify/cfg.h"
#include "verify/dataflow.h"
#include "verify/verify.h"
#include "workload/corpus.h"

namespace mips::verify {
namespace {

using assembler::Unit;

Unit
parseUnit(std::string_view src)
{
    auto unit = assembler::parse(src);
    EXPECT_TRUE(unit.ok()) << (unit.ok() ? "" : unit.error().str());
    return unit.take();
}

/** First diagnostic carrying `code`, or nullptr. */
const Diagnostic *
find(const VerifyReport &report, Code code)
{
    for (const Diagnostic &d : report.diagnostics)
        if (d.code == code)
            return &d;
    return nullptr;
}

std::string
dump(const VerifyReport &report, const Unit &unit)
{
    return reportText(report, unit, "test");
}

// ----------------------------------------------------------------- CFG

TEST(Cfg, BranchEdgesHangOffDelaySlot)
{
    Unit u = parseUnit(
        "beq r1, #0, out\n" // 0
        "add r2, #1, r2\n"  // 1: delay slot, executes on both paths
        "add r3, #1, r3\n"  // 2: fall-through only
        "out: halt\n");     // 3
    Cfg cfg = buildCfg(u, nullptr);
    EXPECT_EQ(cfg.nodes[0].succs, (std::vector<size_t>{1}));
    EXPECT_EQ(cfg.nodes[1].succs, (std::vector<size_t>{2, 3}));
    EXPECT_EQ(cfg.nodes[1].shadow, ShadowKind::BRANCH);
    EXPECT_EQ(cfg.nodes[1].shadow_owner, 0u);
    EXPECT_TRUE(cfg.nodes[3].succs.empty());
    EXPECT_FALSE(cfg.nodes[3].unknown_succ); // halt stops, cleanly
}

TEST(Cfg, UnconditionalBranchKillsFallThrough)
{
    Unit u = parseUnit(
        "bra out\n"         // 0
        "add r2, #1, r2\n"  // 1: slot
        "add r3, #1, r3\n"  // 2: unreachable
        "out: halt\n");     // 3
    Cfg cfg = buildCfg(u, nullptr);
    EXPECT_EQ(cfg.nodes[1].succs, (std::vector<size_t>{3}));
}

TEST(Cfg, IndirectJumpHasTwoSlotShadow)
{
    Unit u = parseUnit(
        "jmp (r15)\n"       // 0
        "add r2, #1, r2\n"  // 1
        "add r3, #1, r3\n"  // 2: last slot; target unknown
        "halt\n");          // 3
    Cfg cfg = buildCfg(u, nullptr);
    EXPECT_EQ(cfg.nodes[1].shadow, ShadowKind::INDIRECT);
    EXPECT_EQ(cfg.nodes[2].shadow, ShadowKind::INDIRECT);
    EXPECT_EQ(cfg.nodes[2].shadow_owner, 0u);
    EXPECT_TRUE(cfg.nodes[2].succs.empty());
    EXPECT_TRUE(cfg.nodes[2].unknown_succ);
}

TEST(Cfg, CallReturnPointHasUnknownPred)
{
    Unit u = parseUnit(
        "call f, r15\n"     // 0
        "add r2, #1, r2\n"  // 1: slot
        "add r3, #1, r3\n"  // 2: return resumes here
        "f: halt\n");       // 3
    Cfg cfg = buildCfg(u, nullptr);
    EXPECT_TRUE(cfg.nodes[1].unknown_succ);
    EXPECT_TRUE(cfg.nodes[2].unknown_pred);
}

TEST(Cfg, LocallyResolvedBranchLabelIsNotUnknownPred)
{
    // Regression: a label whose every reference is a resolved local
    // branch used to be treated as reachable from unknown code, which
    // poisoned forward analyses at every branch target. Its
    // predecessors are exactly the wired edges.
    Unit u = parseUnit(
        "beq r1, #0, out\n" // 0
        "nop\n"             // 1: slot carries the taken edge
        "add r3, #1, r3\n"  // 2: fall-through
        "out: halt\n");     // 3
    Cfg cfg = buildCfg(u, nullptr);
    EXPECT_FALSE(cfg.nodes[3].unknown_pred);
    std::vector<size_t> preds = cfg.nodes[3].preds;
    std::sort(preds.begin(), preds.end());
    EXPECT_EQ(preds, (std::vector<size_t>{1, 2}));
}

TEST(Cfg, AddressTakenBranchLabelKeepsUnknownPred)
{
    // The twin: the same branch target is also referenced as a memory
    // operand, so its address escapes and the conservative marking
    // must stay.
    Unit u = parseUnit(
        "ld @out, r5\n"     // 0: address of the label escapes
        "nop\n"             // 1
        "beq r1, #0, out\n" // 2
        "nop\n"             // 3
        "add r3, #1, r3\n"  // 4
        "out: halt\n");     // 5
    Cfg cfg = buildCfg(u, nullptr);
    EXPECT_TRUE(cfg.nodes[5].unknown_pred);
}

// ------------------------------------------------------------ dataflow

TEST(Dataflow, LivenessStraightLine)
{
    Unit u = parseUnit(
        "add r1, #1, r2\n"  // 0
        "add r2, #1, r3\n"  // 1
        "halt\n");          // 2
    Cfg cfg = buildCfg(u, nullptr);
    DataflowSolution live = liveness(cfg);
    EXPECT_TRUE(live.in[0] & (1u << 1));   // r1 live at entry
    EXPECT_TRUE(live.out[0] & (1u << 2));  // r2 live after item 0
    EXPECT_FALSE(live.out[1] & (1u << 2)); // r2 dead after item 1
    EXPECT_FALSE(live.out[1] & (1u << 3)); // r3 never read: dead
}

TEST(Dataflow, LivenessAroundLoop)
{
    Unit u = parseUnit(
        "movi #10, r1\n"           // 0
        "loop: sub r1, #1, r1\n"   // 1
        "bne r1, #0, loop\n"       // 2
        "mov r0, r0\n"             // 3: slot
        "halt\n");                 // 4
    Cfg cfg = buildCfg(u, nullptr);
    DataflowSolution live = liveness(cfg);
    // r1 is live around the back edge.
    EXPECT_TRUE(live.in[1] & (1u << 1));
    EXPECT_TRUE(live.out[3] & (1u << 1));
}

TEST(Dataflow, DefiniteAssignmentMeetsOverPaths)
{
    Unit u = parseUnit(
        "movi #1, r1\n"       // 0
        "beq r1, #0, skip\n"  // 1
        "mov r0, r0\n"        // 2: slot
        "movi #2, r2\n"       // 3: taken path skips this write
        "skip: halt\n");      // 4
    Cfg cfg = buildCfg(u, nullptr);
    DataflowSolution da = definiteAssignment(cfg, 0);
    EXPECT_TRUE(da.in[4] & (1u << 1));  // r1 written on every path
    EXPECT_FALSE(da.in[4] & (1u << 2)); // r2 only on the fall-through
    EXPECT_TRUE(da.out[3] & (1u << 2));
}

// ---------------------------------------------- golden diagnostics

TEST(Golden, Hz001LoadDelayViolation)
{
    Unit u = parseUnit(
        "ld 0(r14), r2\n"
        "add r2, #1, r3\n"
        "st r3, 0(r14)\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::HZ001), 1u) << dump(report, u);
    const Diagnostic *d = find(report, Code::HZ001);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(d->item_index, 1u);
    EXPECT_FALSE(report.clean());
}

TEST(Golden, Hz001AcrossTakenBranch)
{
    // The load sits in a branch delay slot's shadow... rather: the
    // branch redirects, but the load delay follows the *dynamic*
    // successor — the branch target reads the stale value.
    Unit u = parseUnit(
        "bra out\n"
        "ld 0(r14), r2\n"   // 1: delay slot load
        "halt\n"
        "out: add r2, #1, r3\n" // 3: dynamically next after the load
        "st r3, 0(r14)\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::HZ001), 1u) << dump(report, u);
    EXPECT_EQ(find(report, Code::HZ001)->item_index, 3u);
}

TEST(Golden, Hz001IsNoteInsideNoreorder)
{
    Unit u = parseUnit(
        ".noreorder\n"
        "ld 0(r14), r2\n"
        "add r2, #1, r3\n" // deliberate stale read: well defined
        "halt\n"
        ".reorder\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::HZ001), 1u) << dump(report, u);
    EXPECT_EQ(find(report, Code::HZ001)->severity, Severity::NOTE);
    EXPECT_TRUE(report.clean());
}

TEST(Golden, Hz002TransferInBranchDelaySlot)
{
    Unit u = parseUnit(
        "a: beq r1, #0, a\n"
        "bra a\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::HZ002), 1u) << dump(report, u);
    const Diagnostic *d = find(report, Code::HZ002);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(d->item_index, 1u);
}

TEST(Golden, Hz002NeverTakenBranchInSlotIsFine)
{
    // A never-condition branch is a plain word; it cannot redirect.
    Unit u = parseUnit(
        "a: beq r1, #0, a\n"
        "mov r0, r0\n"
        "halt\n");
    u.items[1].inst = isa::Instruction{};
    u.items[1].inst.branch = isa::BranchPiece{};
    u.items[1].inst.branch->cond = isa::Cond::NEVER;
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::HZ002), 0u) << dump(report, u);
}

TEST(Golden, Hz003TransferInIndirectShadow)
{
    Unit u = parseUnit(
        "jmp (r15)\n"
        "mov r0, r0\n"
        "a: bra a\n" // second shadow word still covered
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::HZ003), 1u) << dump(report, u);
    const Diagnostic *d = find(report, Code::HZ003);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(d->item_index, 2u);
}

TEST(Golden, Hz004PackedDependence)
{
    Unit u = parseUnit(
        "add r1, #1, r2 | ld 0(r14), r2\n"
        "st r2, 0(r14)\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::HZ004), 1u) << dump(report, u);
    EXPECT_EQ(find(report, Code::HZ004)->severity, Severity::ERROR);
    EXPECT_EQ(find(report, Code::HZ004)->item_index, 0u);
}

TEST(Golden, Hz004IndependentPackIsClean)
{
    Unit u = parseUnit(
        "add r1, #1, r2 | ld 0(r14), r3\n"
        "st r2, 0(r14)\n"
        "st r3, 1(r14)\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::HZ004), 0u) << dump(report, u);
}

TEST(Golden, Hz005NoreorderRegionTampered)
{
    Unit legal = parseUnit(
        "movi #1, r1\n"
        ".noreorder\n"
        "movi #2, r2\n"
        "movi #3, r3\n"
        ".reorder\n"
        "st r1, 0(r14)\n"
        "st r2, 1(r14)\n"
        "st r3, 2(r14)\n"
        "halt\n");
    reorg::ReorgResult r = reorg::reorganize(legal);
    EXPECT_TRUE(verifyReorganization(legal, r.unit).clean());

    // Tamper with a fenced word: the verifier must notice.
    Unit tampered = r.unit;
    for (auto &item : tampered.items) {
        if (item.no_reorder && item.inst.alu) {
            item.inst.alu->imm8 = 9;
            break;
        }
    }
    VerifyReport report = verifyReorganization(legal, tampered);
    ASSERT_EQ(report.countOf(Code::HZ005), 1u) << dump(report, tampered);
    EXPECT_EQ(find(report, Code::HZ005)->severity, Severity::ERROR);

    // Drop the whole region: also an integrity failure.
    Unit dropped = r.unit;
    std::erase_if(dropped.items,
                  [](const assembler::Item &i) { return i.no_reorder; });
    EXPECT_GE(verifyReorganization(legal, dropped).countOf(Code::HZ005),
              1u);
}

TEST(Golden, Hz006LoadDelayEscapes)
{
    Unit u = parseUnit("ld 0(r14), r2\n"); // falls off the unit
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::HZ006), 1u) << dump(report, u);
    EXPECT_EQ(find(report, Code::HZ006)->severity, Severity::WARNING);
}

TEST(Golden, Lt001UninitializedRead)
{
    Unit u = parseUnit(
        "add r5, #1, r6\n"
        "st r6, 0(r14)\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_GE(report.countOf(Code::LT001), 1u) << dump(report, u);
    const Diagnostic *d = find(report, Code::LT001);
    EXPECT_EQ(d->severity, Severity::WARNING);
    EXPECT_EQ(d->item_index, 0u);
    EXPECT_NE(d->message.find("r5"), std::string::npos);
    // Assumed-initialized registers are exempt (r14 above), and the
    // caller can widen the set.
    VerifyOptions options;
    options.assume_initialized |= 1u << 5;
    EXPECT_EQ(verifyUnit(u, options).countOf(Code::LT001), 0u);
}

TEST(Golden, Lt002DeadStore)
{
    Unit u = parseUnit(
        "movi #1, r2\n"
        "movi #2, r2\n" // kills the first write; first is dead
        "st r2, 0(r14)\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::LT002), 1u) << dump(report, u);
    const Diagnostic *d = find(report, Code::LT002);
    EXPECT_EQ(d->severity, Severity::WARNING);
    EXPECT_EQ(d->item_index, 0u);
}

TEST(Golden, Lt003UnreachableCode)
{
    Unit u = parseUnit(
        "bra out\n"
        "mov r0, r0\n"     // slot
        "add r1, #1, r1\n" // skipped by the unconditional branch
        "add r2, #1, r2\n"
        "out: halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::LT003), 1u) << dump(report, u);
    const Diagnostic *d = find(report, Code::LT003);
    EXPECT_EQ(d->severity, Severity::WARNING);
    EXPECT_EQ(d->item_index, 2u); // start of the unreachable run
}

TEST(Golden, Vf001InvalidWord)
{
    // Construct an illegal word directly: two transfer pieces.
    Unit u = parseUnit("halt\n");
    assembler::Item bad;
    bad.inst.branch = isa::BranchPiece{};
    bad.inst.branch->cond = isa::Cond::ALWAYS;
    bad.inst.special = isa::SpecialPiece{};
    bad.inst.special->op = isa::SpecialOp::HALT;
    u.items.insert(u.items.begin(), bad);
    VerifyReport report = verifyUnit(u);
    ASSERT_GE(report.countOf(Code::VF001), 1u) << dump(report, u);
    EXPECT_EQ(find(report, Code::VF001)->severity, Severity::ERROR);
}

TEST(Golden, Vf002UndefinedLabel)
{
    Unit u = parseUnit(
        "bra nowhere\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::VF002), 1u) << dump(report, u);
    EXPECT_EQ(find(report, Code::VF002)->severity, Severity::ERROR);
}

/** A well-formed two-entry jump-table dispatch unit. */
Unit
tableUnit()
{
    return parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #0, r3\n"
        "jtab (r2+r3), tab\n"
        "nop\n"
        "nop\n"
        "tab: .word t0\n"
        ".word t1\n"
        "t0: halt\n"
        "t1: halt\n");
}

TEST(Golden, Vf003TableDispatchWithoutLabel)
{
    Unit u = parseUnit(
        "jtab (r2+r3)\n"
        "nop\n"
        "nop\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::VF003), 1u) << dump(report, u);
    const Diagnostic *d = find(report, Code::VF003);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(d->item_index, 0u);
}

TEST(Golden, Vf003TableLabelIsNotAWordRun)
{
    Unit u = parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #0, r3\n"
        "jtab (r2+r3), tab\n"
        "nop\n"
        "nop\n"
        "tab: halt\n"); // an instruction, not a .word run
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::VF003), 1u) << dump(report, u);
    EXPECT_EQ(find(report, Code::VF003)->severity, Severity::ERROR);
}

TEST(Golden, Vf004TableEntryResolvesToData)
{
    Unit u = parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #0, r3\n"
        "jtab (r2+r3), tab\n"
        "nop\n"
        "nop\n"
        "tab: .word d\n"
        "d: .word 5\n"); // the entry lands on data, not code
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::VF004), 1u) << dump(report, u);
    const Diagnostic *d = find(report, Code::VF004);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(d->item_index, 6u);
}

TEST(Golden, WellFormedTableIsClean)
{
    Unit u = tableUnit();
    VerifyReport report = verifyUnit(u);
    EXPECT_EQ(report.countOf(Code::VF003), 0u) << dump(report, u);
    EXPECT_EQ(report.countOf(Code::VF004), 0u) << dump(report, u);
    EXPECT_EQ(report.countOf(Code::HZ007), 0u) << dump(report, u);
    // The table recovery feeds the successor sets: both targets are
    // reachable, so neither arm is flagged unreachable.
    EXPECT_EQ(report.countOf(Code::LT003), 0u) << dump(report, u);
}

TEST(Golden, Hz007StoreInTableDispatchShadow)
{
    Unit u = parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #0, r3\n"
        "jtab (r2+r3), tab\n"
        "st r3, 0(r14)\n" // races the table fetch on the data port
        "nop\n"
        "tab: .word t0\n"
        ".word t1\n"
        "t0: halt\n"
        "t1: halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::HZ007), 1u) << dump(report, u);
    const Diagnostic *d = find(report, Code::HZ007);
    EXPECT_EQ(d->severity, Severity::ERROR);
    EXPECT_EQ(d->item_index, 4u);
}

TEST(Golden, Hz007IsNoteInsideNoreorder)
{
    Unit u = parseUnit(
        "la tab, r2\n"
        "nop\n"
        "movi #0, r3\n"
        ".noreorder\n"
        "jtab (r2+r3), tab\n"
        "st r3, 0(r14)\n" // deliberate: fenced, author's choice
        "nop\n"
        ".reorder\n"
        "tab: .word t0\n"
        ".word t1\n"
        "t0: halt\n"
        "t1: halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_EQ(report.countOf(Code::HZ007), 1u) << dump(report, u);
    EXPECT_EQ(find(report, Code::HZ007)->severity, Severity::NOTE);
}

// ------------------------------------------------------- rendering

TEST(Render, TextAndJsonCarryTheFinding)
{
    Unit u = parseUnit(
        "ld 0(r14), r2\n"
        "add r2, #1, r3\n"
        "st r3, 0(r14)\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    std::string text = reportText(report, u, "unit.s");
    EXPECT_NE(text.find("HZ001"), std::string::npos) << text;
    EXPECT_NE(text.find("error"), std::string::npos) << text;
    EXPECT_NE(text.find("unit.s"), std::string::npos) << text;

    std::string json = reportJson(report, "unit.s");
    EXPECT_NE(json.find("\"code\": \"HZ001\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
}

TEST(Render, TableDiagnosticsCarryTheirCodes)
{
    Unit u = parseUnit(
        "jtab (r2+r3)\n"
        "st r3, 0(r14)\n" // store in the dispatch shadow: HZ007
        "nop\n"
        "halt\n");
    VerifyReport report = verifyUnit(u);
    ASSERT_GE(report.countOf(Code::VF003), 1u) << dump(report, u);
    ASSERT_GE(report.countOf(Code::HZ007), 1u) << dump(report, u);

    std::string text = reportText(report, u, "table.s");
    EXPECT_NE(text.find("VF003"), std::string::npos) << text;
    EXPECT_NE(text.find("HZ007"), std::string::npos) << text;

    std::string json = reportJson(report, "table.s");
    EXPECT_NE(json.find("\"code\": \"VF003\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"code\": \"HZ007\""), std::string::npos)
        << json;
}

// ------------------------------------------- reorganizer as oracle

TEST(Oracle, ReorganizedHazardfulCodeVerifiesClean)
{
    Unit legal = parseUnit(
        "li #500, r13\n"
        "movi #41, r1\n"
        "st r1, 0(r13)\n"
        "ld 0(r13), r2\n"
        "add r2, #1, r3\n"
        "st r3, 1(r13)\n"
        "ld 1(r13), r4\n"
        "add r4, r2, r5\n"
        "st r5, 2(r13)\n"
        "halt\n");
    for (bool reorder : {false, true})
        for (bool pack : {false, true})
            for (bool fill : {false, true}) {
                reorg::ReorgOptions opts;
                opts.reorder = reorder;
                opts.pack = pack;
                opts.fill_delay = fill;
                reorg::ReorgResult r = reorg::reorganize(legal, opts);
                VerifyReport report =
                    verifyReorganization(legal, r.unit);
                EXPECT_TRUE(report.clean()) << dump(report, r.unit);
            }
}

TEST(Oracle, WholeCorpusVerifiesClean)
{
    std::vector<workload::CorpusProgram> programs = workload::corpus();
    for (const workload::CorpusProgram &p : workload::dispatchCorpus())
        programs.push_back(p);
    programs.push_back(workload::fibonacciProgram());
    programs.push_back(workload::puzzle0Program());
    programs.push_back(workload::puzzle1Program());
    for (const auto &program : programs) {
        auto exe = plc::buildExecutable(program.source);
        ASSERT_TRUE(exe.ok()) << program.name;
        VerifyReport report = verifyReorganization(
            exe.value().legal_unit, exe.value().final_unit);
        EXPECT_TRUE(report.clean())
            << program.name << ":\n"
            << dump(report, exe.value().final_unit);
    }
}

// ------------------------------------------------ mutation tests

/** The straight-line hazardful program used for mutation testing. */
Unit
mutationSubject()
{
    return parseUnit(
        "li #500, r13\n"
        "movi #41, r1\n"
        "st r1, 0(r13)\n"
        "ld 0(r13), r2\n"
        "add r2, #1, r3\n"
        "st r3, 1(r13)\n"
        "ld 1(r13), r4\n"
        "add r4, r2, r5\n"
        "st r5, 2(r13)\n"
        "halt\n");
}

TEST(Mutation, DroppedNoopsAreCaught)
{
    // Legalize with pure no-op insertion, then delete the inserted
    // no-ops one at a time. Any drop that changes the pipeline result
    // relative to the sequential oracle must be flagged as an error:
    // the verifier may overapproximate but must not miss.
    Unit legal = mutationSubject();
    reorg::ReorgOptions opts;
    opts.reorder = false;
    opts.pack = false;
    opts.fill_delay = false;
    reorg::ReorgResult r = reorg::reorganize(legal, opts);
    ASSERT_TRUE(verifyReorganization(legal, r.unit).clean());

    sim::FunctionalRun oracle =
        sim::runFunctional(assembler::link(legal).take());
    ASSERT_EQ(oracle.reason, sim::StopReason::HALT);

    size_t divergent = 0;
    for (size_t i = 0; i < r.unit.items.size(); ++i) {
        const assembler::Item &item = r.unit.items[i];
        if (item.is_data || !item.inst.isNop())
            continue;
        Unit mutant = r.unit;
        mutant.items.erase(mutant.items.begin() +
                           static_cast<ptrdiff_t>(i));

        auto linked = assembler::link(mutant);
        ASSERT_TRUE(linked.ok());
        sim::Machine m;
        m.load(linked.take());
        bool diverged = m.cpu().run(1'000'000) != sim::StopReason::HALT;
        for (int reg = 0; !diverged && reg < isa::kNumRegs; ++reg)
            diverged = m.cpu().reg(reg) != oracle.cpu->reg(reg);
        for (uint32_t a = 500; !diverged && a < 504; ++a)
            diverged = m.memory().peek(a) != oracle.memory->peek(a);
        if (!diverged)
            continue;
        ++divergent;
        VerifyReport report = verifyUnit(mutant);
        EXPECT_FALSE(report.clean())
            << "dropped no-op at " << i
            << " diverged but verified clean:\n"
            << assembler::listUnit(mutant);
    }
    // The property must not hold vacuously.
    EXPECT_GE(divergent, 1u);
}

TEST(Mutation, TransferSwappedIntoDelaySlotIsCaught)
{
    // Fill branch delay slots, then replace each filled slot with a
    // branch: the verifier must flag every such mutant.
    Unit legal = parseUnit(
        "li #500, r13\n"
        "movi #5, r1\n"
        "movi #0, r2\n"
        "loop: add r2, r1, r2\n"
        "sub r1, #1, r1\n"
        "bne r1, #0, loop\n"
        "st r2, 0(r13)\n"
        "halt\n");
    reorg::ReorgResult r = reorg::reorganize(legal);
    ASSERT_TRUE(verifyReorganization(legal, r.unit).clean());

    Cfg cfg = buildCfg(r.unit, nullptr);
    size_t mutated = 0;
    for (size_t i = 0; i < cfg.size(); ++i) {
        if (cfg.nodes[i].shadow == ShadowKind::NONE ||
            r.unit.items[i].is_data) {
            continue;
        }
        Unit mutant = r.unit;
        mutant.items[i].inst = isa::Instruction{};
        mutant.items[i].inst.branch = isa::BranchPiece{};
        mutant.items[i].inst.branch->cond = isa::Cond::ALWAYS;
        mutant.items[i].target = "loop";
        ++mutated;
        VerifyReport report = verifyUnit(mutant);
        EXPECT_GE(report.countOf(Code::HZ002) +
                      report.countOf(Code::HZ003),
                  1u)
            << "slot " << i << " mutant verified clean:\n"
            << assembler::listUnit(mutant);
    }
    EXPECT_GE(mutated, 1u);
}

TEST(Mutation, LoadSwappedBelowConsumerIsCaught)
{
    // Move a load directly above its consumer (undoing the spacing the
    // reorganizer created): HZ001 must fire.
    Unit legal = mutationSubject();
    reorg::ReorgResult r = reorg::reorganize(legal);
    ASSERT_TRUE(verifyReorganization(legal, r.unit).clean());

    size_t mutated = 0;
    for (size_t i = 0; i < r.unit.items.size(); ++i) {
        const assembler::Item &load = r.unit.items[i];
        if (load.is_data || !load.inst.isLoad())
            continue;
        uint16_t rd_mask =
            static_cast<uint16_t>(1u << load.inst.mem->rd);
        for (size_t j = i + 2; j < r.unit.items.size(); ++j) {
            const assembler::Item &use = r.unit.items[j];
            if (use.is_data ||
                !(isa::regUse(use.inst).gpr_reads & rd_mask)) {
                continue;
            }
            // Move the load to directly above its consumer, undoing
            // the spacing the reorganizer created.
            Unit mutant = r.unit;
            assembler::Item moved = mutant.items[i];
            mutant.items.erase(mutant.items.begin() +
                               static_cast<ptrdiff_t>(i));
            mutant.items.insert(mutant.items.begin() +
                                    static_cast<ptrdiff_t>(j - 1),
                                moved);
            ++mutated;
            VerifyReport report = verifyUnit(mutant);
            EXPECT_GE(report.countOf(Code::HZ001), 1u)
                << "move " << i << " -> " << j - 1
                << " verified clean:\n" << assembler::listUnit(mutant);
            break;
        }
    }
    EXPECT_GE(mutated, 1u);
}

} // namespace
} // namespace mips::verify
