/**
 * @file
 * Workload tests: every corpus program compiles and runs identically
 * on the functional and pipeline machines under both layouts; the
 * Puzzle variants agree with each other; and the analyzers produce
 * distributions with the paper's qualitative shape.
 */
#include <gtest/gtest.h>

#include "plc/driver.h"
#include "sim/machine.h"
#include "workload/analyzers.h"
#include "workload/corpus.h"

namespace mips::workload {
namespace {

std::string
runOn(const CorpusProgram &program, plc::Layout layout)
{
    plc::CompileOptions copts;
    copts.layout = layout;
    auto exe = plc::buildExecutable(program.source, copts);
    EXPECT_TRUE(exe.ok()) << program.name << ": "
                          << (exe.ok() ? "" : exe.error().str());
    if (!exe.ok())
        return "<error>";

    sim::Machine machine;
    machine.load(exe.value().program);
    EXPECT_EQ(machine.cpu().run(200'000'000), sim::StopReason::HALT)
        << program.name << ": " << machine.cpu().errorMessage();
    std::string pipeline_out = machine.memory().consoleOutput();

    auto legal = assembler::link(exe.value().legal_unit);
    EXPECT_TRUE(legal.ok()) << program.name;
    sim::FunctionalRun f = sim::runFunctional(legal.value(),
                                              200'000'000);
    EXPECT_EQ(f.reason, sim::StopReason::HALT)
        << program.name << ": " << f.cpu->errorMessage();
    EXPECT_EQ(f.memory->consoleOutput(), pipeline_out) << program.name;
    return pipeline_out;
}

TEST(Corpus, AllProgramsRunIdenticallyUnderBothLayouts)
{
    for (const CorpusProgram &program : corpus()) {
        std::string word = runOn(program, plc::Layout::WORD_ALLOCATED);
        std::string byte = runOn(program, plc::Layout::BYTE_ALLOCATED);
        EXPECT_EQ(word, byte) << program.name;
        EXPECT_FALSE(word.empty()) << program.name;
        if (program.expected_output[0] != '\0') {
            EXPECT_EQ(word, program.expected_output) << program.name;
        }
    }
}

TEST(Corpus, DispatchProgramsRunIdenticallyUnderBothLayouts)
{
    ASSERT_GE(dispatchCorpus().size(), 3u);
    for (const CorpusProgram &program : dispatchCorpus()) {
        std::string word = runOn(program, plc::Layout::WORD_ALLOCATED);
        std::string byte = runOn(program, plc::Layout::BYTE_ALLOCATED);
        EXPECT_EQ(word, byte) << program.name;
        EXPECT_FALSE(word.empty()) << program.name;
        if (program.expected_output[0] != '\0') {
            EXPECT_EQ(word, program.expected_output) << program.name;
        }
    }
}

TEST(Corpus, DispatchProgramsUseJumpTables)
{
    // Each dispatch program must actually contain a jtab dispatch, and
    // must lower without one when tables are disabled — with the same
    // console output either way.
    for (const CorpusProgram &program : dispatchCorpus()) {
        auto with = plc::compile(program.source);
        ASSERT_TRUE(with.ok()) << program.name;
        EXPECT_NE(with.value().asm_text.find("jtab"),
                  std::string::npos)
            << program.name << " should dispatch through a jump table";

        plc::CompileOptions copts;
        copts.jump_tables = false;
        auto without = plc::compile(program.source, copts);
        ASSERT_TRUE(without.ok()) << program.name;
        EXPECT_EQ(without.value().asm_text.find("jtab"),
                  std::string::npos)
            << program.name << " must honour jump_tables=false";
    }
}

TEST(Corpus, FibonacciIs987)
{
    EXPECT_EQ(runOn(fibonacciProgram(), plc::Layout::WORD_ALLOCATED),
              "987");
}

TEST(Corpus, PuzzleVariantsSolveAndAgree)
{
    std::string p0 = runOn(puzzle0Program(),
                           plc::Layout::WORD_ALLOCATED);
    std::string p1 = runOn(puzzle1Program(),
                           plc::Layout::WORD_ALLOCATED);
    ASSERT_FALSE(p0.empty());
    EXPECT_EQ(p0[0], 'Y') << "puzzle must find a tiling: " << p0;
    EXPECT_EQ(p0, p1) << "both variants must search identically";
}

// --------------------------------------------------------- Analyzers

TEST(Analyzers, ConstantDistributionShape)
{
    ConstantDist dist;
    for (const plc::ProgramAst &ast :
         parseCorpus(plc::Layout::WORD_ALLOCATED)) {
        collectConstants(ast, &dist);
    }
    ASSERT_GT(dist.dist.total(), 50u);
    // The paper's shape: 0 and 1 are the most common individual
    // values; small constants (<=15) cover the majority; character
    // constants populate 16-255; very large constants are rare.
    double f0 = dist.dist.fraction("0");
    double f1 = dist.dist.fraction("1");
    double small = f0 + f1 + dist.dist.fraction("2") +
                   dist.dist.fraction("3-15");
    EXPECT_GT(f0, 0.10);
    EXPECT_GT(f1, 0.10);
    EXPECT_GT(small, 0.5);
    EXPECT_GT(dist.dist.fraction("16-255"), 0.05);
    EXPECT_LT(dist.dist.fraction(">255"), 0.10);
}

TEST(Analyzers, BoolExprShape)
{
    BoolExprShape shape;
    for (const plc::ProgramAst &ast :
         parseCorpus(plc::Layout::WORD_ALLOCATED)) {
        collectBoolExprs(ast, &shape);
    }
    ASSERT_GT(shape.expressions, 20u);
    // Most boolean expressions guard control flow (paper: 80.9%) and
    // average a bit over one operator (paper: 1.66).
    EXPECT_GT(shape.fracJump(), 0.6);
    EXPECT_GT(shape.meanOperators(), 1.0);
    EXPECT_LT(shape.meanOperators(), 3.0);
}

TEST(Analyzers, CcSavingsAreSmall)
{
    CcSavings savings;
    for (const CorpusProgram &program : corpus()) {
        auto compiled = plc::compile(program.source);
        ASSERT_TRUE(compiled.ok()) << program.name;
        collectCcSavings(compiled.value().unit, &savings);
    }
    ASSERT_GT(savings.compares, 50u);
    // The paper's Table 3: about 1-2% of compares saved by operator-set
    // condition codes; a few percent when moves set them too. The
    // qualitative claim is that both are small.
    EXPECT_LT(savings.fracSavedByOps(), 0.15);
    EXPECT_LE(savings.saved_by_ops, savings.saved_with_moves);
    EXPECT_LT(savings.fracSavedWithMoves(), 0.30);
}

TEST(Analyzers, ReferencePatternsWordVsByte)
{
    auto word = profileCorpus(plc::Layout::WORD_ALLOCATED);
    ASSERT_TRUE(word.ok()) << word.error().str();
    auto byte = profileCorpus(plc::Layout::BYTE_ALLOCATED);
    ASSERT_TRUE(byte.ok()) << byte.error().str();

    const RefPattern &w = word.value().refs;
    const RefPattern &b = byte.value().refs;
    ASSERT_GT(w.total(), 1000u);
    ASSERT_GT(b.total(), 1000u);

    auto frac = [](uint64_t part, uint64_t whole) {
        return static_cast<double>(part) / static_cast<double>(whole);
    };
    // Paper Table 7 vs 8: byte allocation raises the fraction of
    // 8-bit references; loads dominate stores in both.
    double w8 = frac(w.loads8 + w.stores8, w.total());
    double b8 = frac(b.loads8 + b.stores8, b.total());
    EXPECT_LT(w8, b8);
    EXPECT_GT(frac(w.loads8 + w.loads32, w.total()), 0.5);
    EXPECT_GT(frac(b.loads8 + b.loads32, b.total()), 0.5);
    // Word-allocated objects dominate byte-allocated ones (Table 7).
    EXPECT_GT(frac(w.loads32 + w.stores32, w.total()), 0.5);
}

TEST(Analyzers, FreeMemoryCyclesSubstantial)
{
    auto result = profileCorpus(plc::Layout::WORD_ALLOCATED);
    ASSERT_TRUE(result.ok());
    double free_frac = result.value().freeBandwidth();
    // The paper: "the wasted bandwidth came close to 40%". Our
    // measured fraction runs higher because multiplication and
    // division execute as software step loops (pure ALU traffic) —
    // the direction of the claim (substantial idle data-memory
    // bandwidth, worth exposing as free cycles) is what must hold.
    EXPECT_GT(free_frac, 0.25);
    EXPECT_LT(free_frac, 0.95);
}

TEST(Analyzers, ProfileCapturesCharacterTraffic)
{
    auto result = profileProgram(corpus()[0].source, // tokenizer
                                 plc::Layout::WORD_ALLOCATED);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.value().refs.charTotal(), 0u);
}

} // namespace
} // namespace mips::workload
